package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"slices"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"asymsort/internal/obs"
	"asymsort/internal/seq"
	"asymsort/internal/serve"
	"asymsort/internal/wire"
)

// newWorker spins up one real asymsortd job engine (broker + server)
// on an httptest listener — exactly what a cluster worker is.
func newWorker(t *testing.T, mem int) *httptest.Server {
	t.Helper()
	b, err := serve.NewBroker(serve.BrokerConfig{Mem: mem, Procs: 2, MinLease: 16 * 64})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := serve.NewServer(serve.ServerConfig{Broker: b, Block: 64, Omega: 8, TmpDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		b.Close()
	})
	return ts
}

// newCoordinator wires a coordinator over the worker URLs on an
// httptest listener.
func newCoordinator(t *testing.T, cfg Config) (*Coordinator, *httptest.Server) {
	t.Helper()
	if cfg.TmpDir == "" {
		cfg.TmpDir = t.TempDir()
	}
	if cfg.ProbeTimeout == 0 {
		cfg.ProbeTimeout = 500 * time.Millisecond
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(c.Handler())
	t.Cleanup(ts.Close)
	return c, ts
}

func genKeys(n int, seed int64) []uint64 {
	rng := rand.New(rand.NewSource(seed))
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = rng.Uint64() >> 1
	}
	return keys
}

func keysText(keys []uint64) string {
	var sb strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&sb, "%d\n", k)
	}
	return sb.String()
}

func sortedText(keys []uint64) string {
	s := slices.Clone(keys)
	slices.Sort(s)
	return keysText(s)
}

func recsOfKeys(keys []uint64) []seq.Record {
	recs := make([]seq.Record, len(keys))
	for i, k := range keys {
		recs[i] = seq.Record{Key: k, Val: uint64(i)}
	}
	return recs
}

func frameOfKeys(t *testing.T, keys []uint64) []byte {
	t.Helper()
	var buf bytes.Buffer
	fw, err := wire.NewWriter(&buf, int64(len(keys)))
	if err != nil {
		t.Fatal(err)
	}
	if err := fw.WriteRecords(recsOfKeys(keys)); err != nil {
		t.Fatal(err)
	}
	if err := fw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func decodeFrame(t *testing.T, raw []byte) []seq.Record {
	t.Helper()
	fr, err := wire.NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	var out []seq.Record
	buf := make([]seq.Record, 1024)
	for {
		n, err := fr.ReadRecords(buf)
		out = append(out, buf[:n]...)
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatal(err)
		}
	}
}

func post(t *testing.T, url, contentType, accept string, body []byte) (*http.Response, []byte) {
	t.Helper()
	if !strings.Contains(url, "/sort") {
		url += "/sort"
	}
	req, err := http.NewRequest("POST", url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

// TestClusterMatchesSolo: the tentpole identity. The same keys go
// through a solo daemon (forced ext) and through a 3-worker cluster;
// the text bodies must be byte-identical and the binary record streams
// record-identical, in both wire dialects.
func TestClusterMatchesSolo(t *testing.T) {
	solo := newWorker(t, 1<<20)
	var urls []string
	for i := 0; i < 3; i++ {
		urls = append(urls, newWorker(t, 1<<14).URL)
	}
	_, coord := newCoordinator(t, Config{Workers: urls, Shards: 6})

	keys := genKeys(50000, 42)

	soloResp, soloBody := post(t, solo.URL+"/sort?model=ext", "", "", []byte(keysText(keys)))
	if soloResp.StatusCode != http.StatusOK {
		t.Fatalf("solo status %d: %.300s", soloResp.StatusCode, soloBody)
	}

	resp, body := post(t, coord.URL, "", "", []byte(keysText(keys)))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cluster status %d: %.300s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Asymsortd-Model"); got != "cluster" {
		t.Fatalf("model %q, want cluster", got)
	}
	if !bytes.Equal(body, soloBody) {
		t.Fatal("cluster text output differs from solo ext output")
	}
	if want := sortedText(keys); string(body) != want {
		t.Fatal("cluster text output is not the sorted key text")
	}

	// Binary dialect: same multiset, engine total order.
	bresp, bbody := post(t, coord.URL, wire.ContentType, "", frameOfKeys(t, keys))
	if bresp.StatusCode != http.StatusOK {
		t.Fatalf("cluster binary status %d: %.300s", bresp.StatusCode, bbody)
	}
	got := decodeFrame(t, bbody)
	want := recsOfKeys(keys)
	slices.SortFunc(want, seq.TotalCompare)
	if !slices.Equal(got, want) {
		t.Fatalf("cluster binary records differ from the total-order sort (%d vs %d records)", len(got), len(want))
	}
	// The workers' ext write ledgers survive aggregation: measured ==
	// planned across the whole fleet.
	if w, pw := bresp.Header.Get("X-Asymsortd-Writes"), bresp.Header.Get("X-Asymsortd-Plan-Writes"); w != pw {
		t.Fatalf("cluster ledger writes=%q plan=%q, want equal", w, pw)
	}
}

// TestClusterShapes: the splitter edge cases from the partition layer,
// driven end to end — all-equal keys (every record lands in one
// shard), pre-sorted and reversed inputs, and far more shards than
// distinct keys.
func TestClusterShapes(t *testing.T) {
	var urls []string
	for i := 0; i < 3; i++ {
		urls = append(urls, newWorker(t, 1<<14).URL)
	}
	_, coord := newCoordinator(t, Config{Workers: urls, Shards: 8})

	const n = 20000
	allEqual := make([]uint64, n)
	for i := range allEqual {
		allEqual[i] = 7
	}
	sorted := make([]uint64, n)
	reversed := make([]uint64, n)
	fewDistinct := make([]uint64, n)
	for i := range sorted {
		sorted[i] = uint64(i)
		reversed[i] = uint64(n - i)
		fewDistinct[i] = uint64(i % 3)
	}
	for name, keys := range map[string][]uint64{
		"allEqual":        allEqual,
		"sorted":          sorted,
		"reversed":        reversed,
		"shards>distinct": fewDistinct,
		"single":          {12345},
	} {
		t.Run(name, func(t *testing.T) {
			resp, body := post(t, coord.URL, "", "", []byte(keysText(keys)))
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status %d: %.300s", resp.StatusCode, body)
			}
			if want := sortedText(keys); string(body) != want {
				t.Fatalf("output is not the sorted key text (%d bytes vs %d)", len(body), len(want))
			}
		})
	}
}

// TestClusterEmptyInput: a zero-record job round-trips as an empty
// body (text) and an empty frame (binary), no shards dispatched.
func TestClusterEmptyInput(t *testing.T) {
	_, coord := newCoordinator(t, Config{Workers: []string{newWorker(t, 1<<14).URL}})
	resp, body := post(t, coord.URL, "", "", nil)
	if resp.StatusCode != http.StatusOK || len(body) != 0 {
		t.Fatalf("text: status %d, %d body bytes; want 200, 0", resp.StatusCode, len(body))
	}
	resp, body = post(t, coord.URL, wire.ContentType, "", frameOfKeys(t, nil))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("binary: status %d: %.300s", resp.StatusCode, body)
	}
	if got := decodeFrame(t, body); len(got) != 0 {
		t.Fatalf("binary: %d records back, want 0", len(got))
	}
}

// flakyWorker proxies to a real worker but fails the first failN /sort
// requests with a 500 after the body is consumed. Its /healthz stays
// healthy, so the coordinator keeps it in the fleet and re-queues the
// failed shards.
func flakyWorker(t *testing.T, mem int, failN int32) *httptest.Server {
	t.Helper()
	real := newWorker(t, mem)
	var failed atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/sort" && failed.Add(1) <= failN {
			io.Copy(io.Discard, r.Body)
			http.Error(w, "injected shard failure", http.StatusInternalServerError)
			return
		}
		proxyTo(t, real.URL, w, r)
	}))
	t.Cleanup(ts.Close)
	return ts
}

// proxyTo forwards one request to a backend and copies the response
// through, headers included.
func proxyTo(t *testing.T, backend string, w http.ResponseWriter, r *http.Request) {
	req, err := http.NewRequestWithContext(r.Context(), r.Method, backend+r.URL.String(), r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	req.Header = r.Header.Clone()
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}

// TestClusterRetry: a worker that fails its first two shard attempts
// (healthz still fine) costs retries, not the job.
func TestClusterRetry(t *testing.T) {
	urls := []string{
		flakyWorker(t, 1<<14, 2).URL,
		newWorker(t, 1<<14).URL,
	}
	c, coord := newCoordinator(t, Config{Workers: urls, Shards: 4, Retries: 3})
	keys := genKeys(20000, 7)
	resp, body := post(t, coord.URL, "", "", []byte(keysText(keys)))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %.300s", resp.StatusCode, body)
	}
	if want := sortedText(keys); string(body) != want {
		t.Fatal("output is not the sorted key text after retries")
	}
	c.mu.Lock()
	job := *c.jobs[0]
	c.mu.Unlock()
	if job.State != "done" || job.Retries < 1 {
		t.Fatalf("job ledger after flaky worker: %+v (want done with retries >= 1)", job)
	}
}

// TestClusterWorkerDiesMidJob: one worker serves /healthz until its
// first shard arrives, then drops the connection and goes dark — the
// crash shape of a killed daemon. The coordinator's post-failure
// re-probe evicts it and the survivors absorb its shards.
func TestClusterWorkerDiesMidJob(t *testing.T) {
	real := newWorker(t, 1<<14)
	var dead atomic.Bool
	dying := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if dead.Load() {
			hj, ok := w.(http.Hijacker)
			if !ok {
				t.Error("no hijacker")
				return
			}
			conn, _, _ := hj.Hijack()
			conn.Close()
			return
		}
		if r.URL.Path == "/sort" {
			dead.Store(true)
			conn, _, _ := w.(http.Hijacker).Hijack()
			conn.Close()
			return
		}
		proxyTo(t, real.URL, w, r)
	}))
	t.Cleanup(dying.Close)

	urls := []string{dying.URL, newWorker(t, 1<<14).URL, newWorker(t, 1<<14).URL}
	c, coord := newCoordinator(t, Config{Workers: urls, Shards: 6})
	keys := genKeys(30000, 13)
	resp, body := post(t, coord.URL, "", "", []byte(keysText(keys)))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %.300s", resp.StatusCode, body)
	}
	if want := sortedText(keys); string(body) != want {
		t.Fatal("output is not the sorted key text after a worker death")
	}
	st := c.workers[0].stats()
	if st.Healthy {
		t.Fatalf("dead worker still marked healthy: %+v", st)
	}
}

// TestClusterMalformedWorkerFrame: a worker answering 200 with garbage
// bytes must produce a clean coordinator error once the retry budget
// is spent — never a hang, never a 200.
func TestClusterMalformedWorkerFrame(t *testing.T) {
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			w.Write([]byte(`{"status":"ok"}`))
			return
		}
		io.Copy(io.Discard, r.Body)
		w.Header().Set("Content-Type", wire.ContentType)
		w.Write([]byte("this is not a record frame at all"))
	}))
	t.Cleanup(bad.Close)

	_, coord := newCoordinator(t, Config{Workers: []string{bad.URL}, Shards: 2, Retries: 1})
	done := make(chan struct{})
	var code int
	var body []byte
	go func() {
		defer close(done)
		resp, b := post(t, coord.URL, "", "", []byte(keysText(genKeys(5000, 3))))
		code, body = resp.StatusCode, b
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("coordinator hung on a malformed worker frame")
	}
	if code != http.StatusBadGateway {
		t.Fatalf("status %d: %.300s (want 502)", code, body)
	}
	if !strings.Contains(string(body), "shard") {
		t.Fatalf("error does not name the failing shard: %.300s", body)
	}
}

// throttleReader trickles its source at chunk bytes per pause, keeping
// an upload in flight long enough for a hedge to fire.
type throttleReader struct {
	r     io.Reader
	chunk int
	pause time.Duration
}

func (tr *throttleReader) Read(p []byte) (int, error) {
	if len(p) > tr.chunk {
		p = p[:tr.chunk]
	}
	n, err := tr.r.Read(p)
	time.Sleep(tr.pause)
	return n, err
}

// TestClusterHedging: one worker receives its shard through a
// throttled pipe; with hedging armed the idle fast worker duplicates
// the shard and wins, and the loser's worker-side job must actually
// die: its job record goes canceled, its broker envelope comes back
// whole with no live lease, and its spill directory is reclaimed.
func TestClusterHedging(t *testing.T) {
	// The slow worker is a real daemon with an observable tmp dir; the
	// throttle lives in a proxy in front of it, so the worker itself has
	// a genuine in-flight job when the hedge winner cancels it.
	slowTmp := t.TempDir()
	sb, err := serve.NewBroker(serve.BrokerConfig{Mem: 1 << 14, Procs: 2, MinLease: 16 * 64})
	if err != nil {
		t.Fatal(err)
	}
	ssrv, err := serve.NewServer(serve.ServerConfig{Broker: sb, Block: 64, Omega: 8, TmpDir: slowTmp})
	if err != nil {
		t.Fatal(err)
	}
	slowWorker := httptest.NewServer(ssrv.Handler())
	t.Cleanup(func() {
		slowWorker.Close()
		sb.Close()
	})
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/sort" {
			req, err := http.NewRequestWithContext(r.Context(), "POST", slowWorker.URL+r.URL.String(),
				&throttleReader{r: r.Body, chunk: 4096, pause: 50 * time.Millisecond})
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadGateway)
				return
			}
			req.Header = r.Header.Clone()
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadGateway)
				return
			}
			defer resp.Body.Close()
			for k, vs := range resp.Header {
				for _, v := range vs {
					w.Header().Add(k, v)
				}
			}
			w.WriteHeader(resp.StatusCode)
			io.Copy(w, resp.Body)
			return
		}
		proxyTo(t, slowWorker.URL, w, r)
	}))
	t.Cleanup(slow.Close)

	urls := []string{slow.URL, newWorker(t, 1<<14).URL}
	c, coord := newCoordinator(t, Config{
		Workers: urls, Shards: 2, Retries: 1, HedgeAfter: 100 * time.Millisecond,
	})
	keys := genKeys(10000, 99)
	start := time.Now()
	resp, body := post(t, coord.URL, "", "", []byte(keysText(keys)))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %.300s", resp.StatusCode, body)
	}
	if want := sortedText(keys); string(body) != want {
		t.Fatal("output is not the sorted key text under hedging")
	}
	if took := time.Since(start); took > 30*time.Second {
		t.Fatalf("hedged job took %v — the throttled worker was on the critical path", took)
	}
	c.mu.Lock()
	job := *c.jobs[0]
	c.mu.Unlock()
	if job.Hedges < 1 {
		t.Fatalf("job ledger: %+v (want hedges >= 1)", job)
	}

	// The losing attempt's cancellation is asynchronous on the worker
	// side; poll its /stats until the job dies and every resource is
	// back: no canceled-but-leaked lease, no orphan spill files.
	deadline := time.Now().Add(10 * time.Second)
	for {
		var ws struct {
			Broker struct {
				TotalMem int               `json:"total_mem"`
				FreeMem  int               `json:"free_mem"`
				Running  []json.RawMessage `json:"running"`
			} `json:"broker"`
			Jobs []struct {
				State string `json:"state"`
			} `json:"jobs"`
		}
		sr, err := http.Get(slowWorker.URL + "/stats")
		if err != nil {
			t.Fatal(err)
		}
		err = json.NewDecoder(sr.Body).Decode(&ws)
		sr.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		canceled := 0
		for _, wj := range ws.Jobs {
			if wj.State == "canceled" {
				canceled++
			}
		}
		spills, err := filepath.Glob(filepath.Join(slowTmp, "asymsortd-job*"))
		if err != nil {
			t.Fatal(err)
		}
		if canceled >= 1 && len(ws.Broker.Running) == 0 &&
			ws.Broker.FreeMem == ws.Broker.TotalMem && len(spills) == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("loser not reclaimed: jobs=%+v broker=%+v spills=%v",
				ws.Jobs, ws.Broker, spills)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestClusterForwardsAdmissionClass: the coordinator relays the
// client's priority/deadline (header or query) to every shard POST, so
// workers' brokers see the cluster job's latency class; malformed
// values are a clean 400 before any worker traffic.
func TestClusterForwardsAdmissionClass(t *testing.T) {
	real := newWorker(t, 1<<16)
	var gotQuery atomic.Value
	rec := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/sort" {
			gotQuery.Store(r.URL.RawQuery)
		}
		proxyTo(t, real.URL, w, r)
	}))
	t.Cleanup(rec.Close)
	_, coord := newCoordinator(t, Config{Workers: []string{rec.URL}, Shards: 2})

	keys := genKeys(8000, 17)
	req, err := http.NewRequest("POST", coord.URL+"/sort", strings.NewReader(keysText(keys)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Asymsortd-Priority", "5")
	req.Header.Set("X-Asymsortd-Deadline", "750ms")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %.300s", resp.StatusCode, body)
	}
	if string(body) != sortedText(keys) {
		t.Fatal("output is not the sorted key text")
	}
	q, _ := gotQuery.Load().(string)
	if !strings.Contains(q, "priority=5") || !strings.Contains(q, "deadline=750ms") {
		t.Fatalf("shard POST query %q lacks the forwarded admission class", q)
	}

	resp2, body2 := post(t, coord.URL+"/sort?priority=abc", "", "", []byte("2\n1\n"))
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad priority: status %d: %.300s (want 400)", resp2.StatusCode, body2)
	}
	resp3, body3 := post(t, coord.URL+"/sort?deadline=-5s", "", "", []byte("2\n1\n"))
	if resp3.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative deadline: status %d: %.300s (want 400)", resp3.StatusCode, body3)
	}
}

// TestClusterNoHealthyWorkers: a fleet of dead URLs is a clean 503.
func TestClusterNoHealthyWorkers(t *testing.T) {
	deadURL := func() string {
		ts := httptest.NewServer(http.NotFoundHandler())
		ts.Close() // bound, then released: nothing listens here
		return ts.URL
	}
	_, coord := newCoordinator(t, Config{Workers: []string{deadURL(), deadURL()}})
	resp, body := post(t, coord.URL, "", "", []byte("3\n1\n2\n"))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d: %.300s (want 503)", resp.StatusCode, body)
	}
}

// TestClusterObservability: /healthz reports fleet health live,
// /stats carries the job and worker tables, /metrics exposes the
// asymsortd_cluster_* families.
func TestClusterObservability(t *testing.T) {
	reg := obs.NewRegistry()
	urls := []string{newWorker(t, 1<<14).URL, newWorker(t, 1<<14).URL}
	_, coord := newCoordinator(t, Config{Workers: urls, Shards: 4, Metrics: reg})
	keys := genKeys(15000, 5)
	if resp, body := post(t, coord.URL, "", "", []byte(keysText(keys))); resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %.300s", resp.StatusCode, body)
	}

	hr, err := http.Get(coord.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hb, _ := io.ReadAll(hr.Body)
	hr.Body.Close()
	var hs healthSnapshot
	if err := json.Unmarshal(hb, &hs); err != nil {
		t.Fatalf("healthz decode: %v: %s", err, hb)
	}
	if hs.Status != "ok" || hs.Role != "coordinator" || hs.HealthyWorkers != 2 {
		t.Fatalf("healthz: %+v", hs)
	}

	sr, err := http.Get(coord.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	sb, _ := io.ReadAll(sr.Body)
	sr.Body.Close()
	for _, want := range []string{`"workers"`, `"jobs"`, `"state": "done"`, `"bytes_sent"`} {
		if !strings.Contains(string(sb), want) {
			t.Fatalf("stats missing %q: %s", want, sb)
		}
	}

	mr, err := http.Get(coord.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := io.ReadAll(mr.Body)
	mr.Body.Close()
	for _, want := range []string{
		"asymsortd_cluster_jobs_total",
		"asymsortd_cluster_shard_attempts_total",
		"asymsortd_cluster_workers_healthy",
		"asymsortd_cluster_phase_seconds",
	} {
		if !strings.Contains(string(mb), want) {
			t.Fatalf("metrics missing %q", want)
		}
	}
}
