package cluster

// Range partitioning: the staged input is cut into Config.Shards
// key-range shards with the splitter machinery the parallel merge
// uses per-core (extmem.Splitters / extmem.ShardOf), written out as
// raw record files ready to ship. Shard files persist for the whole
// scatter phase so a failed or hedged attempt can re-stream the same
// bytes — retry needs no second partitioning pass.

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"slices"
	"time"

	"asymsort/internal/extmem"
	"asymsort/internal/obs"
	"asymsort/internal/seq"
	"asymsort/internal/wire"
)

// shard is one key range of one job: its input file plus the dispatch
// state the scheduler tracks under its own mutex.
type shard struct {
	id   int
	path string // raw record file, n records
	n    int

	// Dispatch state, owned by the dispatcher's mutex.
	inflight   int
	attempts   int
	failures   int
	hedgedOnce bool
	done       bool
	firstStart time.Time
	cancels    []func()

	// Result of the winning attempt.
	outPath    string
	worker     string
	writes     uint64
	planWrites uint64
}

// partition samples the staged input, cuts splitters, and scans every
// record once into its shard's file. The staged file's payload lives
// at record offsets [skip, skip+n).
func (c *Coordinator) partition(staged string, n, skip int, dir string, sp *obs.Span) ([]*shard, error) {
	parts := c.cfg.Shards
	if parts > n && n > 0 {
		parts = n
	}
	if n == 0 {
		return nil, nil
	}
	bf, err := extmem.OpenBlockFile(staged, 1, nil)
	if err != nil {
		return nil, err
	}
	defer bf.Close()
	lo, hi := skip, skip+n

	sample, err := extmem.SampleRecords(bf, lo, hi, c.cfg.SampleTarget)
	if err != nil {
		return nil, err
	}
	slices.SortFunc(sample, seq.TotalCompare)
	splitters := extmem.Splitters(sample, parts)
	sp.Set(obs.Attr{Key: "shards", Val: int64(parts)},
		obs.Attr{Key: "sample", Val: int64(len(sample))})

	shards := make([]*shard, parts)
	files := make([]*os.File, parts)
	writers := make([]*bufio.Writer, parts)
	defer func() {
		for _, f := range files {
			if f != nil {
				f.Close()
			}
		}
	}()
	for i := range shards {
		path := filepath.Join(dir, fmt.Sprintf("shard-%d.bin", i))
		f, err := os.Create(path)
		if err != nil {
			return nil, err
		}
		files[i] = f
		writers[i] = bufio.NewWriterSize(f, 1<<18)
		shards[i] = &shard{id: i, path: path}
	}

	one := make([]seq.Record, 1)
	raw := make([]byte, wire.RecordBytes)
	err = extmem.ScanRecords(bf, lo, hi, func(rec seq.Record) error {
		i := extmem.ShardOf(splitters, rec)
		one[0] = rec
		wire.EncodeRecords(raw, one)
		shards[i].n++
		_, werr := writers[i].Write(raw)
		return werr
	})
	if err != nil {
		return nil, err
	}
	for i := range shards {
		if err := writers[i].Flush(); err != nil {
			return nil, err
		}
		if err := files[i].Close(); err != nil {
			return nil, err
		}
		files[i] = nil
	}
	return shards, nil
}
