// Package cluster distributes the sort service across machines: a
// coordinator that range-partitions one /sort job over a fleet of
// asymsortd workers and returns output byte-identical to a solo run.
//
// The shape is one BSP superstep — scatter, sort, gather:
//
//	client ── POST /sort ──▶ coordinator
//	                           │ stage body (serve.Codec, fixes n)
//	                           │ sample keys → S-1 splitters
//	                           │ range-partition into S shard files
//	                           │
//	        scatter: contiguous binary frames, one POST /sort per shard
//	           ┌───────────────┼───────────────┐
//	           ▼               ▼               ▼
//	        worker 0        worker 1        worker 2   (plain asymsortd)
//	           │               │               │
//	           └───────────────┼───────────────┘
//	        gather: sorted shard files concatenated in shard order
//	                           │
//	client ◀── sorted body ────┘
//
// Correctness rests on the splitter contract exported by
// internal/extmem (Splitters/ShardOf): cuts are exact lower bounds
// under seq.TotalLess, so shard i holds precisely the records
// splitter[i-1] <= r < splitter[i], every worker sorts its shard with
// the same total order, and the concatenation of sorted shards IS the
// sorted whole — byte-identical to `asymsort -model ext` on the same
// input, which the cluster tests and the CI smoke pin.
//
// Shards travel as contiguous wire frames (Content-Type
// application/x-asymsort-records), so each worker stages its shard
// header-in-place and hands it to the engine behind
// extmem.Config.InSkip — the zero-copy path; no worker ever parses a
// record. Workers are plain asymsortd daemons: they need no cluster
// awareness at all.
//
// Robustness: workers are probed on GET /healthz before each job;
// failed shard attempts are retried on any live worker up to
// Config.Retries times; and when Config.HedgeAfter is set, an idle
// worker duplicates the oldest in-flight straggler shard — first
// answer wins, the loser is canceled, and either answer is
// byte-identical so hedging never changes output. A worker whose
// attempt fails and whose re-probe also fails leaves the fleet for the
// rest of the job.
//
// Observability mirrors internal/serve: per-job trace spans (probe,
// stage, split, scatter with one child span per shard attempt,
// gather), asymsortd_cluster_* metrics on GET /metrics, and a JSON job
// table with per-worker byte/retry ledgers on GET /stats. See
// docs/ARCHITECTURE.md for where the layer sits and
// docs/OPERATIONS.md for running a fleet.
package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"time"

	"asymsort/internal/obs"
	"asymsort/internal/serve"
	"asymsort/internal/wire"
)

// Config parameterizes a coordinator.
type Config struct {
	// Workers is the fleet: base URLs of plain asymsortd daemons
	// (e.g. http://10.0.0.2:8080). Required, at least one.
	Workers []string
	// Shards is how many range shards each job is cut into; more shards
	// than workers lets retry and hedging move smaller units around.
	// Default len(Workers).
	Shards int
	// Retries bounds re-dispatches per shard after its first failed
	// attempt. Default 2.
	Retries int
	// HedgeAfter, when positive, re-dispatches a shard that has been
	// in flight on one worker for longer than this to an idle worker.
	// Zero disables hedging.
	HedgeAfter time.Duration
	// TmpDir is where job staging and shard files live; each job gets
	// its own subdirectory, removed when the job ends. Empty means
	// os.TempDir().
	TmpDir string
	// Metrics, when non-nil, is the registry the coordinator publishes
	// to and the one GET /metrics renders. Nil wires a private one.
	Metrics *obs.Registry
	// TraceDir, when non-empty, enables per-job trace export in the
	// same two formats as internal/serve.
	TraceDir string
	// Client is the HTTP client for worker traffic; nil uses a private
	// client with no overall timeout (shard sorts are long-lived).
	Client *http.Client
	// ProbeTimeout bounds one /healthz probe. Default 2s.
	ProbeTimeout time.Duration
	// SampleTarget is how many records the splitter sample draws.
	// Default max(1024, 64*Shards).
	SampleTarget int
}

// maxRetainedJobs bounds the /stats history, as in internal/serve.
const maxRetainedJobs = 4096

// Coordinator is the cluster job engine.
type Coordinator struct {
	cfg     Config
	start   time.Time
	build   obs.BuildInfo
	reg     *obs.Registry
	obsm    coordMetrics
	workers []*worker

	mu     sync.Mutex
	jobs   map[int]*JobStats
	order  []int
	nextID int
}

// coordMetrics holds the coordinator's metric family handles.
type coordMetrics struct {
	jobs     obs.Vec // counter {outcome}
	attempts obs.Vec // counter {worker,outcome}
	retries  obs.Vec // counter {worker}
	hedges   obs.Vec // counter, no labels
	bytes    obs.Vec // counter {worker,direction}
	phase    obs.Vec // histogram {phase}
	healthy  obs.Vec // gauge, no labels
}

func newCoordMetrics(reg *obs.Registry) coordMetrics {
	return coordMetrics{
		jobs: reg.Counter("asymsortd_cluster_jobs_total",
			"Cluster jobs finished, by outcome.", "outcome"),
		attempts: reg.Counter("asymsortd_cluster_shard_attempts_total",
			"Shard sort attempts, by worker and outcome.", "worker", "outcome"),
		retries: reg.Counter("asymsortd_cluster_shard_retries_total",
			"Failed shard attempts that were re-queued, by the worker that failed.", "worker"),
		hedges: reg.Counter("asymsortd_cluster_hedges_total",
			"Straggler shards re-dispatched to a spare worker."),
		bytes: reg.Counter("asymsortd_cluster_worker_bytes_total",
			"Shard payload bytes moved per worker, by direction (sent|received).",
			"worker", "direction"),
		phase: reg.Histogram("asymsortd_cluster_phase_seconds",
			"Coordinator job phase walls (stage, split, scatter, gather).",
			obs.DurationBuckets, "phase"),
		healthy: reg.Gauge("asymsortd_cluster_workers_healthy",
			"Workers that passed their most recent health probe."),
	}
}

// JobStats is one cluster job's ledger, served on /stats.
type JobStats struct {
	ID     int    `json:"id"`
	State  string `json:"state"` // staging|running|streaming|done|failed|canceled
	N      int    `json:"n"`
	Wire   string `json:"wire,omitempty"`
	Shards int    `json:"shards,omitempty"`
	// Retries counts failed shard attempts that were re-queued; Hedges
	// counts straggler duplications. Both zero on a quiet fleet.
	Retries int `json:"retries,omitempty"`
	Hedges  int `json:"hedges,omitempty"`
	// Writes/PlanWrites sum the workers' ext ledger headers across the
	// job's winning shard attempts; equal when present — the write-plan
	// identity survives distribution.
	Writes     uint64 `json:"writes,omitempty"`
	PlanWrites uint64 `json:"plan_writes,omitempty"`
	StageMS    int64  `json:"stage_ms"`
	SplitMS    int64  `json:"split_ms"`
	ScatterMS  int64  `json:"scatter_ms"`
	StreamMS   int64  `json:"stream_ms"`
	TotalMS    int64  `json:"total_ms"`
	Err        string `json:"err,omitempty"`
}

func (j *JobStats) live() bool {
	switch j.State {
	case "staging", "running", "streaming":
		return true
	}
	return false
}

// WorkerStats is one worker's cumulative ledger, served on /stats and
// (health only) on /healthz.
type WorkerStats struct {
	URL     string `json:"url"`
	Healthy bool   `json:"healthy"`
	LastErr string `json:"last_err,omitempty"`
	// Shards counts winning shard sorts; Retries counts failed attempts
	// charged to this worker.
	Shards        int    `json:"shards"`
	Retries       int    `json:"retries"`
	BytesSent     uint64 `json:"bytes_sent"`
	BytesReceived uint64 `json:"bytes_received"`
}

// New builds a coordinator over the worker fleet.
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Workers) == 0 {
		return nil, fmt.Errorf("cluster: coordinator needs at least one worker URL")
	}
	if cfg.Shards < 1 {
		cfg.Shards = len(cfg.Workers)
	}
	if cfg.Retries < 0 {
		return nil, fmt.Errorf("cluster: negative retry budget %d", cfg.Retries)
	}
	if cfg.Retries == 0 {
		cfg.Retries = 2
	}
	if cfg.TmpDir == "" {
		cfg.TmpDir = os.TempDir()
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{}
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = 2 * time.Second
	}
	if cfg.SampleTarget < 1 {
		cfg.SampleTarget = max(1024, 64*cfg.Shards)
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	c := &Coordinator{
		cfg: cfg, start: time.Now(), build: obs.ReadBuildInfo(),
		reg: reg, obsm: newCoordMetrics(reg),
		jobs: make(map[int]*JobStats),
	}
	for _, u := range cfg.Workers {
		c.workers = append(c.workers, &worker{url: u, client: cfg.Client})
	}
	reg.GaugeFunc("asymsortd_uptime_seconds",
		"Seconds since the coordinator started.",
		func() float64 { return time.Since(c.start).Seconds() })
	return c, nil
}

// Handler returns the coordinator mux. The client-facing surface is
// the same dialect as a solo daemon's /sort, so clients (asymload
// included) need no cluster awareness either.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /sort", c.handleSort)
	mux.HandleFunc("GET /stats", c.handleStats)
	mux.HandleFunc("GET /healthz", c.handleHealthz)
	mux.HandleFunc("GET /metrics", c.handleMetrics)
	mux.HandleFunc("/sort", methodNotAllowed("POST"))
	mux.HandleFunc("/stats", methodNotAllowed("GET"))
	mux.HandleFunc("/healthz", methodNotAllowed("GET"))
	mux.HandleFunc("/metrics", methodNotAllowed("GET"))
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		jsonError(w, http.StatusNotFound, "no such endpoint %s", r.URL.Path)
	})
	return mux
}

func (c *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	c.reg.WriteProm(w)
}

// statsSnapshot is the coordinator's /stats payload.
type statsSnapshot struct {
	Workers []WorkerStats `json:"workers"`
	Jobs    []JobStats    `json:"jobs"`
}

func (c *Coordinator) handleStats(w http.ResponseWriter, r *http.Request) {
	snap := statsSnapshot{}
	for _, wk := range c.workers {
		snap.Workers = append(snap.Workers, wk.stats())
	}
	c.mu.Lock()
	for _, j := range c.jobs {
		snap.Jobs = append(snap.Jobs, *j)
	}
	c.mu.Unlock()
	sort.Slice(snap.Jobs, func(a, b int) bool { return snap.Jobs[a].ID < snap.Jobs[b].ID })
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(snap)
}

// healthSnapshot is the coordinator's /healthz payload: the fleet is
// re-probed on every request, so the status is live, not cached.
type healthSnapshot struct {
	Status         string        `json:"status"` // ok|degraded|down
	Role           string        `json:"role"`
	UptimeMS       int64         `json:"uptime_ms"`
	HealthyWorkers int           `json:"healthy_workers"`
	Workers        []WorkerStats `json:"workers"`
	Build          obs.BuildInfo `json:"build"`
}

func (c *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	healthy := c.probeWorkers(r.Context())
	h := healthSnapshot{
		Role:           "coordinator",
		UptimeMS:       time.Since(c.start).Milliseconds(),
		HealthyWorkers: len(healthy),
		Build:          c.build,
	}
	for _, wk := range c.workers {
		h.Workers = append(h.Workers, wk.stats())
	}
	switch {
	case len(healthy) == len(c.workers):
		h.Status = "ok"
	case len(healthy) > 0:
		h.Status = "degraded"
	default:
		h.Status = "down"
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(h)
}

// probeWorkers health-checks the whole fleet concurrently and returns
// the workers that answered, updating the healthy gauge.
func (c *Coordinator) probeWorkers(ctx context.Context) []*worker {
	var wg sync.WaitGroup
	for _, wk := range c.workers {
		wg.Add(1)
		go func(wk *worker) {
			defer wg.Done()
			wk.probe(ctx, c.cfg.ProbeTimeout)
		}(wk)
	}
	wg.Wait()
	var healthy []*worker
	for _, wk := range c.workers {
		if wk.isHealthy() {
			healthy = append(healthy, wk)
		}
	}
	c.obsm.healthy.With().Set(float64(len(healthy)))
	return healthy
}

// newJob registers a job record, evicting old finished jobs beyond the
// retention cap.
func (c *Coordinator) newJob() *JobStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	j := &JobStats{ID: c.nextID, State: "staging"}
	c.nextID++
	c.jobs[j.ID] = j
	c.order = append(c.order, j.ID)
	for i := 0; len(c.jobs) > maxRetainedJobs && i < len(c.order); {
		id := c.order[i]
		old, ok := c.jobs[id]
		if ok && old.live() {
			i++
			continue
		}
		delete(c.jobs, id)
		c.order = append(c.order[:i], c.order[i+1:]...)
	}
	return j
}

func (c *Coordinator) setJob(j *JobStats, f func(*JobStats)) {
	c.mu.Lock()
	f(j)
	c.mu.Unlock()
}

// httpError carries a status for errors raised before the first body
// byte.
type httpError struct {
	code int
	msg  string
}

func (e *httpError) Error() string { return e.msg }

func (c *Coordinator) handleSort(w http.ResponseWriter, r *http.Request) {
	j := c.newJob()
	var tr *obs.Trace
	if c.cfg.TraceDir != "" {
		tr = obs.NewTrace(fmt.Sprintf("job-%d", j.ID))
	}
	root := tr.Root("cluster-job")
	start := time.Now()
	err := c.runJob(r.Context(), j, w, r, root)
	root.End()
	c.mu.Lock()
	j.TotalMS = time.Since(start).Milliseconds()
	if err != nil {
		if j.State != "canceled" {
			j.State = "failed"
		}
		j.Err = err.Error()
	} else {
		j.State = "done"
	}
	outcome := j.State
	c.mu.Unlock()
	c.obsm.jobs.With(outcome).Inc()
	c.exportTrace(j.ID, tr)
}

// runJob executes one cluster sort end to end: stage → probe → split →
// scatter → gather. Errors before the first response byte become
// proper HTTP statuses; after that, aborting the chunked body is the
// only honest signal left, exactly as in the solo engine.
func (c *Coordinator) runJob(ctx context.Context, j *JobStats, w http.ResponseWriter, r *http.Request, root *obs.Span) error {
	fail := func(code int, format string, args ...any) error {
		e := &httpError{code: code, msg: fmt.Sprintf(format, args...)}
		http.Error(w, e.msg, e.code)
		return e
	}
	query, err := forwardQuery(r)
	if err != nil {
		return fail(http.StatusBadRequest, "job %d: %v", j.ID, err)
	}

	dir, err := os.MkdirTemp(c.cfg.TmpDir, fmt.Sprintf("asymcoord-job%d-", j.ID))
	if err != nil {
		return fail(http.StatusInternalServerError, "job %d: %v", j.ID, err)
	}
	defer os.RemoveAll(dir)

	inCodec, outCodec := serve.Negotiate(r)
	c.setJob(j, func(j *JobStats) { j.Wire = outCodec.Name() })

	// Stage the client body locally, fixing n.
	stageSp := root.Child("stage")
	stageStart := time.Now()
	staged := filepath.Join(dir, "in.bin")
	n, skip, err := inCodec.Stage(r.Body, staged)
	stageSp.Set(obs.Attr{Key: "recs", Val: int64(n)})
	stageSp.End()
	c.obsm.phase.With("stage").Observe(time.Since(stageStart).Seconds())
	c.setJob(j, func(j *JobStats) { j.N = n; j.StageMS = time.Since(stageStart).Milliseconds() })
	if err != nil {
		if ctx.Err() != nil {
			c.setJob(j, func(j *JobStats) { j.State = "canceled" })
			return fmt.Errorf("job %d: %w", j.ID, err)
		}
		code := http.StatusBadRequest
		if !errors.Is(err, wire.ErrFormat) && inCodec.Binary {
			code = http.StatusInternalServerError
		}
		return fail(code, "job %d: %v", j.ID, err)
	}

	// Admit only against a live fleet.
	probeSp := root.Child("probe")
	healthy := c.probeWorkers(ctx)
	probeSp.Set(obs.Attr{Key: "healthy", Val: int64(len(healthy))})
	probeSp.End()
	if len(healthy) == 0 {
		return fail(http.StatusServiceUnavailable, "job %d: no healthy workers", j.ID)
	}
	c.setJob(j, func(j *JobStats) { j.State = "running" })

	// Split: sample, cut splitters, write shard files.
	splitSp := root.Child("split")
	splitStart := time.Now()
	shards, err := c.partition(staged, n, skip, dir, splitSp)
	splitSp.End()
	c.obsm.phase.With("split").Observe(time.Since(splitStart).Seconds())
	c.setJob(j, func(j *JobStats) {
		j.SplitMS = time.Since(splitStart).Milliseconds()
		j.Shards = len(shards)
	})
	if err != nil {
		return fail(http.StatusInternalServerError, "job %d: %v", j.ID, err)
	}

	// Scatter: dispatch shards across the fleet until every one has a
	// sorted result file (or the retry budget is spent).
	scatterSp := root.Child("scatter")
	scatterStart := time.Now()
	d := newDispatcher(c, shards, dir, query, scatterSp)
	err = d.run(ctx, healthy)
	scatterSp.End()
	c.obsm.phase.With("scatter").Observe(time.Since(scatterStart).Seconds())
	var writes, planWrites uint64
	ledger := true
	for _, sh := range shards {
		if sh.n == 0 {
			continue
		}
		writes += sh.writes
		planWrites += sh.planWrites
		if sh.writes == 0 {
			ledger = false // a native-model shard carries no ext ledger
		}
	}
	c.setJob(j, func(j *JobStats) {
		j.ScatterMS = time.Since(scatterStart).Milliseconds()
		j.Retries = d.retried
		j.Hedges = d.hedged
		if ledger {
			j.Writes, j.PlanWrites = writes, planWrites
		}
	})
	if err != nil {
		if ctx.Err() != nil {
			c.setJob(j, func(j *JobStats) { j.State = "canceled" })
			return fmt.Errorf("job %d: %w", j.ID, err)
		}
		return fail(http.StatusBadGateway, "job %d: %v", j.ID, err)
	}

	// Gather: concatenate the sorted shard files in shard order — the
	// splitter contract makes that the globally sorted output.
	w.Header().Set("Content-Type", outCodec.ContentType())
	w.Header().Set("X-Asymsortd-Wire", outCodec.Name())
	w.Header().Set("X-Asymsortd-Job", strconv.Itoa(j.ID))
	w.Header().Set("X-Asymsortd-Model", "cluster")
	w.Header().Set("X-Asymsortd-Shards", strconv.Itoa(len(shards)))
	w.Header().Set("X-Asymsortd-Cluster-Workers", strconv.Itoa(len(healthy)))
	if ledger {
		w.Header().Set("X-Asymsortd-Writes", strconv.FormatUint(writes, 10))
		w.Header().Set("X-Asymsortd-Plan-Writes", strconv.FormatUint(planWrites, 10))
	}
	c.setJob(j, func(j *JobStats) { j.State = "streaming" })
	streamStart := time.Now()
	streamSp := root.Child("gather")
	streamSp.Set(obs.Attr{Key: "recs", Val: int64(n)})
	var paths []string
	for _, sh := range shards {
		if sh.n > 0 {
			paths = append(paths, sh.outPath)
		}
	}
	err = outCodec.StreamFiles(w, paths, n)
	streamSp.End()
	c.obsm.phase.With("gather").Observe(time.Since(streamStart).Seconds())
	c.setJob(j, func(j *JobStats) { j.StreamMS = time.Since(streamStart).Milliseconds() })
	if err != nil {
		return fmt.Errorf("job %d: streaming output: %w", j.ID, err)
	}
	return nil
}

// forwardQuery validates the client's model/mem hints and admission
// class (priority/deadline, query or X-Asymsortd-* header) and rebuilds
// the query string forwarded verbatim to every shard POST — so a
// latency-class cluster job is a latency-class job on every worker's
// broker too. Deadlines forward as the client's relative target: each
// worker resolves it against the shard's own arrival, which is the
// clock the shard actually races.
func forwardQuery(r *http.Request) (string, error) {
	q := r.URL.Query()
	fwd := url.Values{}
	if model := q.Get("model"); model != "" {
		switch model {
		case "auto", "ext", "native":
		default:
			return "", fmt.Errorf("unknown model %q", model)
		}
		fwd.Set("model", model)
	}
	if mem := q.Get("mem"); mem != "" {
		v, err := strconv.Atoi(mem)
		if err != nil || v < 1 {
			return "", fmt.Errorf("bad mem=%q", mem)
		}
		fwd.Set("mem", mem)
	}
	pick := func(query, header string) string {
		if v := q.Get(query); v != "" {
			return v
		}
		return r.Header.Get(header)
	}
	if v := pick("priority", "X-Asymsortd-Priority"); v != "" {
		if _, err := strconv.Atoi(v); err != nil {
			return "", fmt.Errorf("bad priority=%q", v)
		}
		fwd.Set("priority", v)
	}
	if v := pick("deadline", "X-Asymsortd-Deadline"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil {
			ms, merr := strconv.Atoi(v)
			if merr != nil {
				return "", fmt.Errorf("bad deadline=%q (want a duration like 750ms or integer milliseconds)", v)
			}
			d = time.Duration(ms) * time.Millisecond
		}
		if d < 0 {
			return "", fmt.Errorf("bad deadline=%q (negative)", v)
		}
		fwd.Set("deadline", v)
	}
	if len(fwd) == 0 {
		return "", nil
	}
	return "?" + fwd.Encode(), nil
}

// exportTrace writes the finished job's trace to TraceDir in both
// formats, as the solo engine does.
func (c *Coordinator) exportTrace(id int, tr *obs.Trace) {
	if tr == nil || c.cfg.TraceDir == "" {
		return
	}
	writeFile := func(name string, emit func(io.Writer) error) {
		f, err := os.Create(filepath.Join(c.cfg.TraceDir, name))
		if err != nil {
			return
		}
		emit(f)
		f.Close()
	}
	writeFile(fmt.Sprintf("job-%d.trace.jsonl", id), tr.WriteJSONL)
	writeFile(fmt.Sprintf("job-%d.chrome.json", id), tr.WriteChrome)
}

// jsonError writes a JSON error body with the given status.
func jsonError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// methodNotAllowed rejects with a JSON 405 naming the allowed method.
func methodNotAllowed(allow string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Allow", allow)
		jsonError(w, http.StatusMethodNotAllowed, "%s not allowed on %s (use %s)", r.Method, r.URL.Path, allow)
	}
}
