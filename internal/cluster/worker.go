package cluster

// The worker client and the shard scheduler. A worker is a plain
// asymsortd daemon reached over HTTP: probe() is its GET /healthz
// check, sortShard() one POST /sort carrying a contiguous binary
// frame. The dispatcher runs one fetch loop per healthy worker over a
// shared queue: failed attempts re-queue until the per-shard retry
// budget is spent, idle workers hedge the oldest straggler, and a
// worker that fails an attempt and then fails a re-probe leaves the
// job. All dispatch state lives under one mutex with a condition
// variable; a ticker broadcasts while hedging is armed so idle loops
// re-check straggler ages.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"asymsort/internal/obs"
	"asymsort/internal/wire"
)

// worker is the coordinator's view of one asymsortd daemon.
type worker struct {
	url    string
	client *http.Client

	mu       sync.Mutex
	healthy  bool
	lastErr  string
	shards   int // winning shard sorts
	retries  int // failed attempts charged to this worker
	bytesOut uint64
	bytesIn  uint64
}

func (w *worker) isHealthy() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.healthy
}

func (w *worker) stats() WorkerStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return WorkerStats{
		URL: w.url, Healthy: w.healthy, LastErr: w.lastErr,
		Shards: w.shards, Retries: w.retries,
		BytesSent: w.bytesOut, BytesReceived: w.bytesIn,
	}
}

// probe hits GET /healthz and records the outcome. Any 200 is healthy;
// a draining or dead daemon is not dispatched to.
func (w *worker) probe(ctx context.Context, timeout time.Duration) bool {
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	ok, errMsg := false, ""
	req, err := http.NewRequestWithContext(ctx, "GET", w.url+"/healthz", nil)
	if err != nil {
		errMsg = err.Error()
	} else if resp, err := w.client.Do(req); err != nil {
		errMsg = err.Error()
	} else {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			ok = true
		} else {
			errMsg = fmt.Sprintf("healthz status %d", resp.StatusCode)
		}
	}
	w.mu.Lock()
	w.healthy, w.lastErr = ok, errMsg
	w.mu.Unlock()
	return ok
}

// shardResult is what a successful attempt yields.
type shardResult struct {
	outPath    string
	writes     uint64
	planWrites uint64
}

// sortShard ships one shard to the worker as a contiguous binary frame
// (the worker stages it in place behind InSkip) and spools the sorted
// response frame to a private file. The response count must match the
// shard's; a malformed or short frame is an error, never a hang — the
// frame reader validates as it spools.
func (w *worker) sortShard(ctx context.Context, sh *shard, attempt int, query, dir string) (shardResult, error) {
	var res shardResult
	f, err := os.Open(sh.path)
	if err != nil {
		return res, err
	}
	defer f.Close()
	var hdr []byte
	hdr, err = wire.AppendHeader(nil, wire.Header{Count: int64(sh.n), Contiguous: true})
	if err != nil {
		return res, err
	}
	req, err := http.NewRequestWithContext(ctx, "POST", w.url+"/sort"+query, io.MultiReader(strings.NewReader(string(hdr)), f))
	if err != nil {
		return res, err
	}
	req.Header.Set("Content-Type", wire.ContentType)
	req.Header.Set("Accept", wire.ContentType)
	req.ContentLength = int64(wire.HeaderBytes + sh.n*wire.RecordBytes)

	resp, err := w.client.Do(req)
	if err != nil {
		return res, fmt.Errorf("worker %s: shard %d: %w", w.url, sh.id, err)
	}
	defer resp.Body.Close()
	w.mu.Lock()
	w.bytesOut += uint64(req.ContentLength)
	w.mu.Unlock()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return res, fmt.Errorf("worker %s: shard %d: status %d: %s", w.url, sh.id, resp.StatusCode, strings.TrimSpace(string(msg)))
	}

	fr, err := wire.NewReader(resp.Body)
	if err != nil {
		return res, fmt.Errorf("worker %s: shard %d: %w", w.url, sh.id, err)
	}
	out := filepath.Join(dir, fmt.Sprintf("sorted-%d-a%d.bin", sh.id, attempt))
	of, err := os.Create(out)
	if err != nil {
		return res, err
	}
	n, err := fr.Spool(of)
	if cerr := of.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(out)
		return res, fmt.Errorf("worker %s: shard %d: %w", w.url, sh.id, err)
	}
	if int(n) != sh.n {
		os.Remove(out)
		return res, fmt.Errorf("worker %s: shard %d: sorted %d records, want %d", w.url, sh.id, n, sh.n)
	}
	w.mu.Lock()
	w.bytesIn += uint64(n) * wire.RecordBytes
	w.mu.Unlock()
	res.outPath = out
	res.writes, _ = strconv.ParseUint(resp.Header.Get("X-Asymsortd-Writes"), 10, 64)
	res.planWrites, _ = strconv.ParseUint(resp.Header.Get("X-Asymsortd-Plan-Writes"), 10, 64)
	return res, nil
}

// dispatcher schedules one job's shards across the fleet.
type dispatcher struct {
	c     *Coordinator
	dir   string
	query string
	sp    *obs.Span

	mu        sync.Mutex
	cond      *sync.Cond
	jobCtx    context.Context
	cancelJob context.CancelFunc
	shards    []*shard // non-empty shards only
	pending   []*shard
	done      int
	active    int // worker loops still running
	err       error
	retried   int
	hedged    int
}

func newDispatcher(c *Coordinator, shards []*shard, dir, query string, sp *obs.Span) *dispatcher {
	d := &dispatcher{c: c, dir: dir, query: query, sp: sp}
	d.cond = sync.NewCond(&d.mu)
	for _, sh := range shards {
		if sh.n > 0 {
			d.shards = append(d.shards, sh)
			d.pending = append(d.pending, sh)
		}
	}
	return d
}

// run drives the scatter to completion: every non-empty shard sorted,
// or a terminal error (retry budget spent, or no workers left).
func (d *dispatcher) run(ctx context.Context, workers []*worker) error {
	if len(d.shards) == 0 {
		return nil
	}
	jobCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	d.jobCtx, d.cancelJob = jobCtx, cancel
	stop := context.AfterFunc(jobCtx, d.cond.Broadcast)
	defer stop()
	if d.c.cfg.HedgeAfter > 0 {
		// Idle loops wait on the cond; only time moves a straggler past
		// the hedge threshold, so a ticker supplies the wakeups.
		tick := time.NewTicker(d.c.cfg.HedgeAfter / 4)
		defer tick.Stop()
		go func() {
			for {
				select {
				case <-jobCtx.Done():
					return
				case <-tick.C:
					d.cond.Broadcast()
				}
			}
		}()
	}
	var wg sync.WaitGroup
	d.active = len(workers)
	for _, wk := range workers {
		wg.Add(1)
		go func(wk *worker) {
			defer wg.Done()
			d.loop(wk)
		}(wk)
	}
	wg.Wait()
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.err == nil && ctx.Err() != nil {
		d.err = ctx.Err()
	}
	if d.err == nil && d.done < len(d.shards) {
		d.err = errors.New("no healthy workers remain")
	}
	return d.err
}

// loop is one worker's fetch cycle. It exits when the job is complete
// or failed, or when the worker proves unhealthy after a failure.
func (d *dispatcher) loop(wk *worker) {
	defer func() {
		d.mu.Lock()
		d.active--
		if d.active == 0 {
			d.cond.Broadcast()
		}
		d.mu.Unlock()
	}()
	for {
		sh, attempt, actx, cancel := d.next()
		if sh == nil {
			return
		}
		asp := d.sp.Child("shard")
		asp.Set(obs.Attr{Key: "shard", Val: int64(sh.id)},
			obs.Attr{Key: "recs", Val: int64(sh.n)},
			obs.Attr{Key: "attempt", Val: int64(attempt)})
		res, err := wk.sortShard(actx, sh, attempt, d.query, d.dir)
		asp.End()
		cancel()
		if !d.finish(sh, wk, res, err) {
			return
		}
	}
}

// next blocks until there is an attempt for this worker: a pending
// (new or re-queued) shard first, else — with hedging armed — the
// oldest single-flight straggler past the threshold. Returns a nil
// shard when the job is over.
func (d *dispatcher) next() (*shard, int, context.Context, context.CancelFunc) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for {
		if d.err != nil || d.done == len(d.shards) || d.jobCtx.Err() != nil {
			return nil, 0, nil, nil
		}
		if len(d.pending) > 0 {
			sh := d.pending[0]
			d.pending = d.pending[1:]
			if sh.done {
				continue // a re-queued shard whose hedge attempt won meanwhile
			}
			return d.claimLocked(sh)
		}
		if ha := d.c.cfg.HedgeAfter; ha > 0 {
			var straggler *shard
			for _, sh := range d.shards {
				if sh.done || sh.inflight != 1 || sh.hedgedOnce || time.Since(sh.firstStart) < ha {
					continue
				}
				if straggler == nil || sh.firstStart.Before(straggler.firstStart) {
					straggler = sh
				}
			}
			if straggler != nil {
				straggler.hedgedOnce = true
				d.hedged++
				d.c.obsm.hedges.With().Inc()
				d.sp.Event("hedge", obs.Attr{Key: "shard", Val: int64(straggler.id)})
				return d.claimLocked(straggler)
			}
		}
		d.cond.Wait()
	}
}

// claimLocked books an attempt on sh and builds its cancelable context.
func (d *dispatcher) claimLocked(sh *shard) (*shard, int, context.Context, context.CancelFunc) {
	sh.inflight++
	sh.attempts++
	if sh.attempts == 1 {
		sh.firstStart = time.Now()
	}
	actx, cancel := context.WithCancel(d.jobCtx)
	sh.cancels = append(sh.cancels, cancel)
	return sh, sh.attempts, actx, cancel
}

// finish books an attempt's outcome and reports whether the worker
// should keep pulling shards.
func (d *dispatcher) finish(sh *shard, wk *worker, res shardResult, err error) bool {
	d.mu.Lock()
	sh.inflight--
	switch {
	case sh.done:
		// A losing hedge attempt (or one canceled at job end): discard.
		d.c.obsm.attempts.With(wk.url, "canceled").Inc()
		if err == nil {
			os.Remove(res.outPath)
		}
		d.mu.Unlock()
		return true
	case err == nil:
		sh.done = true
		sh.outPath = res.outPath
		sh.worker = wk.url
		sh.writes, sh.planWrites = res.writes, res.planWrites
		d.done++
		// Any other attempt on this shard is now wasted work: cancel it.
		for _, cancel := range sh.cancels {
			cancel()
		}
		d.c.obsm.attempts.With(wk.url, "ok").Inc()
		d.cond.Broadcast()
		d.mu.Unlock()
		wk.mu.Lock()
		wk.shards++
		wk.mu.Unlock()
		return true
	}
	// A failed attempt. A cancellation from losing a hedge race was
	// handled above (sh.done); a job-level cancel unwinds via jobCtx.
	d.c.obsm.attempts.With(wk.url, "error").Inc()
	if d.jobCtx.Err() != nil {
		d.mu.Unlock()
		return false
	}
	sh.failures++
	lastErr := err
	if sh.failures > d.c.cfg.Retries {
		d.err = fmt.Errorf("shard %d failed %d times; retry budget %d spent: %w",
			sh.id, sh.failures, d.c.cfg.Retries, lastErr)
		d.cond.Broadcast()
		d.mu.Unlock()
		d.cancelJob() // abort every other in-flight attempt
		return false
	}
	d.retried++
	d.c.obsm.retries.With(wk.url).Inc()
	d.sp.Event("retry", obs.Attr{Key: "shard", Val: int64(sh.id)},
		obs.Attr{Key: "failures", Val: int64(sh.failures)})
	d.pending = append(d.pending, sh)
	d.cond.Broadcast()
	d.mu.Unlock()
	wk.mu.Lock()
	wk.retries++
	wk.mu.Unlock()
	// Was the failure the shard's fault or the worker's? Re-probe: a
	// dead or unreachable worker leaves the job so the remaining fleet
	// absorbs its queue instead of burning the shard's retry budget.
	probeCtx, cancel := context.WithCancel(context.Background())
	defer cancel()
	return wk.probe(probeCtx, d.c.cfg.ProbeTimeout)
}
