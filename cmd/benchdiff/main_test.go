package main

import (
	"strings"
	"testing"

	"asymsort/internal/exp"
)

func rec(id string, cols []string, rows ...map[string]any) exp.ExpRecord {
	return exp.ExpRecord{
		Experiment: id,
		Title:      "t",
		Tables:     []exp.TableRecord{{Columns: cols, Rows: rows}},
	}
}

func TestDiffMarkdownAnnotatesDeltas(t *testing.T) {
	oldRecs := []exp.ExpRecord{rec("ext", []string{"k", "wall"},
		map[string]any{"k": float64(1), "wall": float64(100)},
		map[string]any{"k": float64(2), "wall": float64(50)},
	)}
	newRecs := []exp.ExpRecord{rec("ext", []string{"k", "wall"},
		map[string]any{"k": float64(1), "wall": float64(80)},
		map[string]any{"k": float64(2), "wall": float64(50)},
		map[string]any{"k": float64(3), "wall": float64(40)},
	)}
	got := diffMarkdown(oldRecs, newRecs)
	for _, want := range []string{
		"| k | wall |",
		"| 1 | 80 (-20.0%) |", // joined on the key column, delta vs 100
		"| 2 | 50 |",          // unchanged: no delta noise
		"| 3 | 40 |",          // new row: no baseline
	} {
		if !strings.Contains(got, want) {
			t.Errorf("markdown missing %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, "| 1 (") {
		t.Errorf("key column must not carry a delta:\n%s", got)
	}
}

func TestDiffMarkdownNoBaseline(t *testing.T) {
	newRecs := []exp.ExpRecord{rec("ext", []string{"k", "wall"},
		map[string]any{"k": float64(1), "wall": float64(80)})}
	got := diffMarkdown(nil, newRecs)
	if !strings.Contains(got, "| 1 | 80 |") {
		t.Errorf("baseline-free rows should render plain:\n%s", got)
	}
}

func TestParseGoBench(t *testing.T) {
	// A uniform trailing -N is the GOMAXPROCS suffix: stripped, and a
	// dash-spelled parameter before it survives intact.
	text := `goos: linux
BenchmarkNativeCOSort/n=65536-4     3   11243865 ns/op    93.26 MB/s
BenchmarkMerge/fanin-8-4            3    1518938 ns/op
PASS
`
	got := parseGoBench(text)
	if got["BenchmarkNativeCOSort/n=65536"] != 11243865 {
		t.Errorf("procs suffix not stripped: %v", got)
	}
	if got["BenchmarkMerge/fanin-8"] != 1518938 {
		t.Errorf("dash-spelled parameter mangled: %v", got)
	}
}

func TestParseGoBenchMixedSuffixes(t *testing.T) {
	// Trailing -N that varies across lines is part of the benchmark
	// names (GOMAXPROCS=1 output has no suffix at all): nothing may be
	// stripped, or two different benchmarks would merge into one key.
	text := `BenchmarkMerge/fanin-8     3   100 ns/op
BenchmarkMerge/fanin-16    3   200 ns/op
BenchmarkSpanCopy          3   300 ns/op
`
	got := parseGoBench(text)
	if len(got) != 3 || got["BenchmarkMerge/fanin-8"] != 100 || got["BenchmarkMerge/fanin-16"] != 200 {
		t.Errorf("mixed suffixes must be kept verbatim: %v", got)
	}
}

func TestDiffMarkdownReshapedTableIsNotJoined(t *testing.T) {
	// A baseline table with different columns (a reordered or reshaped
	// sweep) must read as "no baseline" rather than produce deltas
	// against the wrong series.
	oldRecs := []exp.ExpRecord{rec("ext", []string{"k", "reads", "wall"},
		map[string]any{"k": float64(1), "reads": float64(9), "wall": float64(100)})}
	newRecs := []exp.ExpRecord{rec("ext", []string{"k", "wall"},
		map[string]any{"k": float64(1), "wall": float64(80)})}
	got := diffMarkdown(oldRecs, newRecs)
	if !strings.Contains(got, "| 1 | 80 |") || strings.Contains(got, "%") {
		t.Errorf("reshaped table must render without deltas:\n%s", got)
	}
}

func TestGoBenchMarkdown(t *testing.T) {
	got := goBenchMarkdown(
		map[string]float64{"BenchmarkA": 200},
		map[string]float64{"BenchmarkA": 100, "BenchmarkB": 7},
	)
	if !strings.Contains(got, "| BenchmarkA | 100 | -50.0% |") {
		t.Errorf("missing delta row:\n%s", got)
	}
	if !strings.Contains(got, "| BenchmarkB | 7 | — |") {
		t.Errorf("missing baseline-free row:\n%s", got)
	}
}
