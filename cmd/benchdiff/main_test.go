package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"asymsort/internal/exp"
)

func rec(id string, cols []string, rows ...map[string]any) exp.ExpRecord {
	return exp.ExpRecord{
		Experiment: id,
		Title:      "t",
		Tables:     []exp.TableRecord{{Columns: cols, Rows: rows}},
	}
}

func TestDiffMarkdownAnnotatesDeltas(t *testing.T) {
	oldRecs := []exp.ExpRecord{rec("ext", []string{"k", "wall"},
		map[string]any{"k": float64(1), "wall": float64(100)},
		map[string]any{"k": float64(2), "wall": float64(50)},
	)}
	newRecs := []exp.ExpRecord{rec("ext", []string{"k", "wall"},
		map[string]any{"k": float64(1), "wall": float64(80)},
		map[string]any{"k": float64(2), "wall": float64(50)},
		map[string]any{"k": float64(3), "wall": float64(40)},
	)}
	got := diffMarkdown(oldRecs, newRecs)
	for _, want := range []string{
		"| k | wall |",
		"| 1 | 80 (-20.0%) |", // joined on the key column, delta vs 100
		"| 2 | 50 |",          // unchanged: no delta noise
		"| 3 | 40 |",          // new row: no baseline
	} {
		if !strings.Contains(got, want) {
			t.Errorf("markdown missing %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, "| 1 (") {
		t.Errorf("key column must not carry a delta:\n%s", got)
	}
}

func TestDiffMarkdownNoBaseline(t *testing.T) {
	newRecs := []exp.ExpRecord{rec("ext", []string{"k", "wall"},
		map[string]any{"k": float64(1), "wall": float64(80)})}
	got := diffMarkdown(nil, newRecs)
	if !strings.Contains(got, "| 1 | 80 |") {
		t.Errorf("baseline-free rows should render plain:\n%s", got)
	}
}

func TestParseGoBench(t *testing.T) {
	// A uniform trailing -N is the GOMAXPROCS suffix: stripped, and a
	// dash-spelled parameter before it survives intact.
	text := `goos: linux
BenchmarkNativeCOSort/n=65536-4     3   11243865 ns/op    93.26 MB/s
BenchmarkMerge/fanin-8-4            3    1518938 ns/op
PASS
`
	got := parseGoBench(text)
	if got["BenchmarkNativeCOSort/n=65536"] != 11243865 {
		t.Errorf("procs suffix not stripped: %v", got)
	}
	if got["BenchmarkMerge/fanin-8"] != 1518938 {
		t.Errorf("dash-spelled parameter mangled: %v", got)
	}
}

func TestParseGoBenchMixedSuffixes(t *testing.T) {
	// Trailing -N that varies across lines is part of the benchmark
	// names (GOMAXPROCS=1 output has no suffix at all): nothing may be
	// stripped, or two different benchmarks would merge into one key.
	text := `BenchmarkMerge/fanin-8     3   100 ns/op
BenchmarkMerge/fanin-16    3   200 ns/op
BenchmarkSpanCopy          3   300 ns/op
`
	got := parseGoBench(text)
	if len(got) != 3 || got["BenchmarkMerge/fanin-8"] != 100 || got["BenchmarkMerge/fanin-16"] != 200 {
		t.Errorf("mixed suffixes must be kept verbatim: %v", got)
	}
}

func TestDiffMarkdownReshapedTableJoinsSharedColumns(t *testing.T) {
	// A baseline table whose column set differs (a sweep that grew or
	// dropped columns between runs) still joins on the key column, and
	// deltas appear exactly on the columns both recordings share.
	oldRecs := []exp.ExpRecord{rec("ext", []string{"k", "reads", "wall"},
		map[string]any{"k": float64(1), "reads": float64(9), "wall": float64(100)})}
	newRecs := []exp.ExpRecord{rec("ext", []string{"k", "wall", "writes"},
		map[string]any{"k": float64(1), "wall": float64(80), "writes": float64(7)})}
	got := diffMarkdown(oldRecs, newRecs)
	if !strings.Contains(got, "| 1 | 80 (-20.0%) | 7 |") {
		t.Errorf("shared column lost its delta (or a baseline-free column gained one):\n%s", got)
	}
}

func TestDiffMarkdownMissingKeyColumnIsNotJoined(t *testing.T) {
	// A baseline table without the new table's key column cannot join
	// rows at all: it must read as "no baseline", never diff against
	// the wrong series.
	oldRecs := []exp.ExpRecord{rec("ext", []string{"fanin", "wall"},
		map[string]any{"fanin": float64(1), "wall": float64(100)})}
	newRecs := []exp.ExpRecord{rec("ext", []string{"k", "wall"},
		map[string]any{"k": float64(1), "wall": float64(80)})}
	got := diffMarkdown(oldRecs, newRecs)
	if !strings.Contains(got, "| 1 | 80 |") || strings.Contains(got, "%") {
		t.Errorf("keyless baseline must render without deltas:\n%s", got)
	}
}

func TestDiffMarkdownKernelsTableAcrossColumnGrowth(t *testing.T) {
	// The kernels sweep fixture: a baseline recorded before the table
	// grew its cost ratio column joins the current shape on the kernel
	// key — numeric deltas on the shared measurement columns, plain
	// rendering for the new column and the string-valued param column,
	// and a kernel absent from the baseline renders plain.
	oldRecs := []exp.ExpRecord{rec("kernels",
		[]string{"kernel", "param", "kern writes", "base writes"},
		map[string]any{"kernel": "semisort", "param": "-", "kern writes": float64(1000), "base writes": float64(8000)},
		map[string]any{"kernel": "top-k", "param": "k=32", "kern writes": float64(4), "base writes": float64(9000)},
	)}
	newRecs := []exp.ExpRecord{rec("kernels",
		[]string{"kernel", "param", "kern writes", "base writes", "cost base/kern"},
		map[string]any{"kernel": "semisort", "param": "-", "kern writes": float64(900), "base writes": float64(8000), "cost base/kern": float64(3.5)},
		map[string]any{"kernel": "top-k", "param": "k=64", "kern writes": float64(8), "base writes": float64(9000), "cost base/kern": float64(41.2)},
		map[string]any{"kernel": "merge-join", "param": "left=512", "kern writes": float64(70), "base writes": float64(160), "cost base/kern": float64(2.3)},
	)}
	got := diffMarkdown(oldRecs, newRecs)
	for _, want := range []string{
		"| semisort | - | 900 (-10.0%) | 8000 | 3.500 |",
		"| top-k | k=64 | 8 (+100.0%) | 9000 | 41.200 |",
		"| merge-join | left=512 | 70 | 160 | 2.300 |",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("kernels fixture missing %q:\n%s", want, got)
		}
	}
}

func TestDiffMarkdownDisjointExperimentSets(t *testing.T) {
	// Experiments only in the baseline are ignored; experiments only in
	// the new recording render plain. Shared ones still join — a partial
	// overlap must not poison either side.
	oldRecs := []exp.ExpRecord{
		rec("gone", []string{"k", "wall"}, map[string]any{"k": float64(1), "wall": float64(9)}),
		rec("ext", []string{"k", "wall"}, map[string]any{"k": float64(1), "wall": float64(100)}),
	}
	newRecs := []exp.ExpRecord{
		rec("ext", []string{"k", "wall"}, map[string]any{"k": float64(1), "wall": float64(50)}),
		rec("fresh", []string{"k", "wall"}, map[string]any{"k": float64(1), "wall": float64(7)}),
	}
	got := diffMarkdown(oldRecs, newRecs)
	if strings.Contains(got, "gone") {
		t.Errorf("baseline-only experiment leaked into the summary:\n%s", got)
	}
	if !strings.Contains(got, "| 1 | 50 (-50.0%) |") {
		t.Errorf("shared experiment lost its delta:\n%s", got)
	}
	if !strings.Contains(got, "### fresh") || !strings.Contains(got, "| 1 | 7 |") {
		t.Errorf("new-only experiment must render plain:\n%s", got)
	}
	if strings.Contains(got, "| 1 | 7 (") {
		t.Errorf("new-only experiment must not carry deltas:\n%s", got)
	}
}

func TestDiffMarkdownNonNumericCells(t *testing.T) {
	// String cells render verbatim and never get a percentage — even
	// when the baseline holds a number under the same key — and a
	// numeric cell over a string baseline renders plain.
	oldRecs := []exp.ExpRecord{rec("ext", []string{"k", "engine", "wall"},
		map[string]any{"k": float64(1), "engine": float64(3), "wall": "n/a"})}
	newRecs := []exp.ExpRecord{rec("ext", []string{"k", "engine", "wall"},
		map[string]any{"k": float64(1), "engine": "sequential", "wall": float64(80)})}
	got := diffMarkdown(oldRecs, newRecs)
	if !strings.Contains(got, "| 1 | sequential | 80 |") {
		t.Errorf("non-numeric cells mishandled:\n%s", got)
	}
	if strings.Contains(got, "%") {
		t.Errorf("no delta may appear across a string/number type change:\n%s", got)
	}
}

func TestLoadRecsMissingAndMalformed(t *testing.T) {
	// A missing baseline file is ok=false (first-run mode), as is one
	// that is not an exp.Recorder JSON array.
	if _, ok := loadRecs(filepath.Join(t.TempDir(), "nope.json")); ok {
		t.Fatal("missing file reported ok")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"not":"an array"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := loadRecs(bad); ok {
		t.Fatal("malformed JSON reported ok")
	}
	good := filepath.Join(t.TempDir(), "good.json")
	if err := os.WriteFile(good, []byte(`[{"experiment":"e","title":"t","tables":[]}]`), 0o644); err != nil {
		t.Fatal(err)
	}
	if recs, ok := loadRecs(good); !ok || len(recs) != 1 {
		t.Fatalf("valid recording rejected: ok=%v recs=%d", ok, len(recs))
	}
}

func TestDiffMarkdownDuplicateRowKeys(t *testing.T) {
	// Duplicate key-column values in the baseline: every new row joins
	// the FIRST baseline row with that key, deterministically — the
	// stable choice when a sweep records one row per repetition.
	oldRecs := []exp.ExpRecord{rec("ext", []string{"k", "wall"},
		map[string]any{"k": float64(1), "wall": float64(100)},
		map[string]any{"k": float64(1), "wall": float64(10)},
	)}
	newRecs := []exp.ExpRecord{rec("ext", []string{"k", "wall"},
		map[string]any{"k": float64(1), "wall": float64(50)},
		map[string]any{"k": float64(1), "wall": float64(50)},
	)}
	got := diffMarkdown(oldRecs, newRecs)
	want := "| 1 | 50 (-50.0%) |"
	if strings.Count(got, want) != 2 {
		t.Errorf("duplicate keys must join the first baseline row on both rows:\n%s", got)
	}
	if strings.Contains(got, "+400.0%") {
		t.Errorf("a duplicate-key row joined the second baseline row:\n%s", got)
	}
}

func TestGoBenchMarkdown(t *testing.T) {
	got := goBenchMarkdown(
		map[string]float64{"BenchmarkA": 200},
		map[string]float64{"BenchmarkA": 100, "BenchmarkB": 7},
	)
	if !strings.Contains(got, "| BenchmarkA | 100 | -50.0% |") {
		t.Errorf("missing delta row:\n%s", got)
	}
	if !strings.Contains(got, "| BenchmarkB | 7 | — |") {
		t.Errorf("missing baseline-free row:\n%s", got)
	}
}
