// Command benchdiff renders the before/after table for the CI bench
// job: it joins two asymbench -json recordings (see exp.Recorder and
// the BENCH_*.json artifacts) — and, optionally, two `go test -bench`
// text outputs — and emits a GitHub-flavored-markdown summary with
// per-cell deltas against the baseline. The baseline side may be
// missing (the first recorded run has nothing to diff against), in
// which case the new numbers render without deltas.
//
// Usage:
//
//	benchdiff [-gobench-old old.txt] [-gobench-new new.txt] old.json new.json
//
// CI restores old.json from the rolling bench-baseline cache, writes
// the markdown to $GITHUB_STEP_SUMMARY, and then promotes new.json to
// be the next run's baseline.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"asymsort/internal/exp"
)

func main() {
	gobenchOld := flag.String("gobench-old", "", "baseline `go test -bench` text output (optional)")
	gobenchNew := flag.String("gobench-new", "", "current `go test -bench` text output (optional)")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-gobench-old f] [-gobench-new f] old.json new.json")
		os.Exit(2)
	}
	oldRecs, oldOK := loadRecs(flag.Arg(0))
	newRecs, newOK := loadRecs(flag.Arg(1))
	if !newOK {
		fmt.Fprintf(os.Stderr, "benchdiff: cannot read %s\n", flag.Arg(1))
		os.Exit(1)
	}
	if !oldOK {
		fmt.Println("_No bench baseline found — recording this run as the first baseline._")
	}
	fmt.Print(diffMarkdown(oldRecs, newRecs))
	if *gobenchNew != "" {
		oldNS := parseGoBench(readAll(*gobenchOld))
		newNS := parseGoBench(readAll(*gobenchNew))
		fmt.Print(goBenchMarkdown(oldNS, newNS))
	}
}

// loadRecs reads one asymbench -json recording; a missing or unreadable
// file reports ok=false (no baseline).
func loadRecs(path string) ([]exp.ExpRecord, bool) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, false
	}
	var recs []exp.ExpRecord
	if err := json.Unmarshal(data, &recs); err != nil {
		return nil, false
	}
	return recs, true
}

func readAll(path string) string {
	if path == "" {
		return ""
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return ""
	}
	return string(data)
}

// diffMarkdown renders every table of newRecs as markdown, annotating
// each numeric cell with its delta against the same experiment, table
// index, and row key (the first column's value) in oldRecs.
func diffMarkdown(oldRecs, newRecs []exp.ExpRecord) string {
	var b strings.Builder
	for _, e := range newRecs {
		fmt.Fprintf(&b, "\n### %s — %s\n\n", e.Experiment, e.Title)
		for ti, tb := range e.Tables {
			if len(tb.Columns) == 0 {
				continue
			}
			base := matchTable(oldRecs, e.Experiment, ti, tb.Columns)
			fmt.Fprintf(&b, "| %s |\n|%s\n", strings.Join(tb.Columns, " | "),
				strings.Repeat("---|", len(tb.Columns)))
			for _, row := range tb.Rows {
				cells := make([]string, len(tb.Columns))
				var baseRow map[string]any
				if base != nil {
					baseRow = matchRow(base, tb.Columns[0], row[tb.Columns[0]])
				}
				for i, col := range tb.Columns {
					cells[i] = renderCell(row[col], baseRow[col], i > 0)
				}
				fmt.Fprintf(&b, "| %s |\n", strings.Join(cells, " | "))
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}

// matchTable finds the ti-th table of the experiment with the given ID.
// The baseline's column set need not match cols exactly — a sweep that
// grew or dropped columns between runs still joins, and deltas appear
// on the columns the two recordings share (a baseline row simply has no
// value under a column it never recorded, so those cells render plain).
// The one hard requirement is the key column: rows join on cols[0], so
// a baseline table that doesn't carry it reads as "no baseline" rather
// than diffing against the wrong series.
func matchTable(recs []exp.ExpRecord, id string, ti int, cols []string) *exp.TableRecord {
	for i := range recs {
		if recs[i].Experiment != id || ti >= len(recs[i].Tables) {
			continue
		}
		tb := &recs[i].Tables[ti]
		for _, col := range tb.Columns {
			if col == cols[0] {
				return tb
			}
		}
		return nil
	}
	return nil
}

// matchRow finds the row whose key column holds the same value.
func matchRow(tb *exp.TableRecord, keyCol string, key any) map[string]any {
	for _, row := range tb.Rows {
		if fmt.Sprint(row[keyCol]) == fmt.Sprint(key) {
			return row
		}
	}
	return nil
}

// renderCell formats one cell, appending the percentage delta when both
// sides are numbers. Key columns (diffable=false) render plain.
func renderCell(v, baseline any, diffable bool) string {
	nv, numNew := v.(float64)
	if !numNew {
		return fmt.Sprint(v)
	}
	s := trimFloat(nv)
	if !diffable {
		return s
	}
	nb, numOld := baseline.(float64)
	if !numOld || nb == 0 {
		return s
	}
	pct := 100 * (nv - nb) / nb
	if pct == 0 {
		return s
	}
	return fmt.Sprintf("%s (%+.1f%%)", s, pct)
}

// trimFloat renders a float without trailing zero noise.
func trimFloat(f float64) string {
	if f == float64(int64(f)) {
		return strconv.FormatInt(int64(f), 10)
	}
	return strconv.FormatFloat(f, 'f', 3, 64)
}

// parseGoBench extracts name → ns/op from `go test -bench` text. When
// every benchmark carries the same trailing -N (the GOMAXPROCS suffix
// the testing package appends at GOMAXPROCS > 1) it is stripped, so
// runs from hosts with different processor counts still join; a
// trailing -N that varies across lines is part of the benchmark's own
// name (a dash-spelled parameter) and is kept.
func parseGoBench(text string) map[string]float64 {
	type bench struct {
		name string
		ns   float64
	}
	var rows []bench
	common, uniform := "", true
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") || fields[3] != "ns/op" {
			continue
		}
		ns, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			continue
		}
		rows = append(rows, bench{fields[0], ns})
		suffix := ""
		if i := strings.LastIndex(fields[0], "-"); i > 0 {
			if _, err := strconv.Atoi(fields[0][i+1:]); err == nil {
				suffix = fields[0][i:]
			}
		}
		if common == "" {
			common = suffix
		}
		if suffix == "" || suffix != common {
			uniform = false
		}
	}
	out := make(map[string]float64, len(rows))
	for _, b := range rows {
		name := b.name
		// A single row is no evidence of a GOMAXPROCS suffix — it could
		// as well be a dash-spelled parameter — so keep it verbatim.
		if uniform && common != "" && len(rows) >= 2 {
			name = strings.TrimSuffix(name, common)
		}
		out[name] = b.ns
	}
	return out
}

// goBenchMarkdown renders the go-test benchmark comparison.
func goBenchMarkdown(oldNS, newNS map[string]float64) string {
	if len(newNS) == 0 {
		return ""
	}
	names := make([]string, 0, len(newNS))
	for name := range newNS {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteString("\n### go test -bench\n\n| benchmark | ns/op | vs baseline |\n|---|---|---|\n")
	for _, name := range names {
		delta := "—"
		if old, ok := oldNS[name]; ok && old > 0 {
			delta = fmt.Sprintf("%+.1f%%", 100*(newNS[name]-old)/old)
		}
		fmt.Fprintf(&b, "| %s | %.0f | %s |\n", name, newNS[name], delta)
	}
	return b.String()
}
