// Command asymbench regenerates the experiment tables that validate every
// theorem of Blelloch et al., "Sorting with Asymmetric Read and Write
// Costs" (SPAA 2015) — see DESIGN.md for the experiment index and
// EXPERIMENTS.md for recorded results.
//
// Usage:
//
//	asymbench -exp all            # run every experiment (full sizes)
//	asymbench -exp E4 -quick      # one experiment at test sizes
//	asymbench -exp E3 -format csv # machine-readable output
//	asymbench -exp native         # wall-clock table of the rt native backend
//	asymbench -exp ext            # measured IO + wall-clock of the extmem engine
//	asymbench -exp all -json out.json  # also record every table as JSON rows
//	asymbench -list               # enumerate experiments
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"asymsort/internal/exp"
	"asymsort/internal/obs"
)

func main() {
	var (
		expID    = flag.String("exp", "all", "experiment ID (E1..E14), 'native', 'ext', 'kernels', or 'all'")
		quick    = flag.Bool("quick", false, "use reduced problem sizes")
		format   = flag.String("format", "text", "output format: text or csv")
		seed     = flag.Uint64("seed", 1, "base random seed")
		procs    = flag.Int("procs", 0, "native/ext benchmark workers (0 = GOMAXPROCS)")
		jsonPath = flag.String("json", "", "also write every rendered table's rows as JSON to this file")
		list     = flag.Bool("list", false, "list experiments and exit")
		version  = flag.Bool("version", false, "print build info and exit")
	)
	flag.Parse()

	if *version {
		fmt.Println(obs.ReadBuildInfo())
		return
	}
	if *list {
		for _, e := range exp.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		fmt.Printf("%-4s %s\n", "native", "Hardware backend wall-clock (rt native, not golden-stable)")
		fmt.Printf("%-4s %s\n", "ext", "External-memory engine measured IO + wall-clock (extmem, not golden-stable)")
		fmt.Printf("%-4s %s\n", "kernels", "Kernel registry metered writes vs classic baselines (not golden-stable)")
		return
	}
	cfg := exp.Config{Quick: *quick, Seed: *seed, CSV: *format == "csv"}
	if *jsonPath != "" {
		cfg.Rec = exp.NewRecorder()
	}
	if *format != "text" && *format != "csv" {
		fmt.Fprintf(os.Stderr, "asymbench: unknown format %q\n", *format)
		os.Exit(2)
	}
	switch {
	case strings.EqualFold(*expID, "native"):
		exp.NativeBench(os.Stdout, cfg, *procs)
	case strings.EqualFold(*expID, "ext"):
		exp.ExtBench(os.Stdout, cfg, *procs)
	case strings.EqualFold(*expID, "kernels"):
		exp.KernelsBench(os.Stdout, cfg, *procs)
	case strings.EqualFold(*expID, "all"):
		for _, e := range exp.All() {
			e.Run(os.Stdout, cfg)
		}
	default:
		e, ok := exp.Lookup(*expID)
		if !ok {
			fmt.Fprintf(os.Stderr, "asymbench: unknown experiment %q (use -list)\n", *expID)
			os.Exit(2)
		}
		e.Run(os.Stdout, cfg)
	}
	if cfg.Rec != nil {
		if err := cfg.Rec.WriteFile(*jsonPath); err != nil {
			fmt.Fprintf(os.Stderr, "asymbench: writing -json: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\nrecorded %s\n", *jsonPath)
	}
}
