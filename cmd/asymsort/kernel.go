package main

// The -kernel path: run any internal/kernel registry kernel — not just
// sort — on the backend -model picks. The same kernel definition runs
// everywhere: on the metered simulators (-model co charges the
// asymmetric cache, -model pram the work-depth meters), on the rt
// native backend at hardware speed, and on the external-memory
// composition (-model ext) with its measured block ledger checked
// against the composition's own write plan. Every run is verified
// against the kernel's in-memory reference, so this doubles as the
// CLI's differential harness.

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"asymsort/internal/co"
	"asymsort/internal/extmem"
	"asymsort/internal/icache"
	"asymsort/internal/kernel"
	"asymsort/internal/rt"
	"asymsort/internal/seq"
	"asymsort/internal/wd"
)

// kernelFlags carries the -kernel run's knobs out of main.
type kernelFlags struct {
	name    string
	buckets int
	topk    int
	left    int
	model   string
	n       int
	m       int
	b       int
	omega   uint64
	seed    uint64
	procs   int
	inPath  string
	outPath string
	mem     string
	k       int
	tmpdir  string
}

// runKernel executes one kernel job end to end and exits on failure.
func runKernel(f kernelFlags) {
	if err := kernelRun(f); err != nil {
		fmt.Fprintf(os.Stderr, "asymsort: %v\n", err)
		os.Exit(1)
	}
}

func kernelRun(f kernelFlags) error {
	k, ok := kernel.Get(f.name)
	if !ok {
		return fmt.Errorf("unknown -kernel %q (kernels: %s)", f.name, strings.Join(kernel.Names(), ", "))
	}
	p := kernel.Params{Buckets: f.buckets, K: f.topk, LeftN: f.left}

	var in []seq.Record
	var src string
	if f.inPath != "" {
		var err error
		if in, err = readKeys(f.inPath); err != nil {
			return err
		}
		src = f.inPath
		if src == "-" {
			src = "stdin"
		}
	} else {
		in = seq.Uniform(f.n, f.seed)
		src = "generated uniform workload"
	}
	if err := k.Check(len(in), p); err != nil {
		return err
	}
	want := k.Ref(in, p)
	fmt.Printf("kernel %s: n=%d records from %s, model=%s\n", k.Name, len(in), src, f.model)

	var out []seq.Record
	switch f.model {
	case "co":
		cache := icache.New(f.b, f.m/f.b, f.omega, icache.PolicyRWLRU)
		c := rt.NewSimCO(co.NewCtx(cache))
		base := cache.Stats()
		out = k.Run(c, rt.FromSlice[seq.Record](c, in), p).Unwrap()
		cache.Flush()
		stats := cache.Stats().Sub(base)
		fmt.Printf("  reads  = %d\n", stats.Reads)
		fmt.Printf("  writes = %d\n", stats.Writes)
		fmt.Printf("  cost   = reads + ω·writes = %d\n", stats.Cost(f.omega))
		fmt.Printf("  note   : cache misses/write-backs under read-write LRU at M=%d B=%d (§5.1)\n", f.m, f.b)
	case "pram":
		t := wd.NewRoot(f.omega)
		c := rt.NewSimWD(t)
		out = k.Run(c, rt.FromSlice[seq.Record](c, in), p).Unwrap()
		stats := t.Work()
		fmt.Printf("  work   = %d reads + %d writes (cost %d)\n", stats.Reads, stats.Writes, stats.Cost(f.omega))
		fmt.Printf("  depth  = %d\n", t.Depth())
		fmt.Printf("  note   : asymmetric work-depth meters (§3)\n")
	case "native":
		pool := rt.NewPool(f.procs)
		c := rt.NewNative(pool, f.omega)
		start := time.Now()
		out = k.Run(c, rt.WrapSlice[seq.Record](c, in), p).Unwrap()
		elapsed := time.Since(start)
		rate := float64(len(in)) / elapsed.Seconds() / 1e6
		fmt.Printf("  procs   = %d\n", pool.Procs())
		fmt.Printf("  elapsed = %v (%.2f Mrec/s in)\n", elapsed, rate)
	case "ext":
		var err error
		if out, err = kernelExt(k, p, in, f); err != nil {
			return err
		}
	default:
		return fmt.Errorf("-kernel needs -model co | pram | native | ext (got %q)", f.model)
	}

	if len(out) != len(want) {
		return fmt.Errorf("INTERNAL ERROR: kernel produced %d records, reference has %d", len(out), len(want))
	}
	for i := range out {
		if out[i] != want[i] {
			return fmt.Errorf("INTERNAL ERROR: kernel diverges from the in-memory reference at record %d", i)
		}
	}
	fmt.Printf("  output verified: %d records match the in-memory reference\n", len(out))
	if f.outPath != "" {
		if err := writeRecords(f.outPath, out, k.Name != "sort"); err != nil {
			return err
		}
		fmt.Printf("  wrote %d records to %s\n", len(out), f.outPath)
	}
	return nil
}

// kernelExt stages the input and runs the kernel's external-memory
// composition, reporting the measured ledger against the composition's
// own write plan.
func kernelExt(k *kernel.Kernel, p kernel.Params, in []seq.Record, f kernelFlags) ([]seq.Record, error) {
	memBytes, err := parseSize(f.mem)
	if err != nil {
		return nil, fmt.Errorf("bad -mem: %v", err)
	}
	tmpdir := f.tmpdir
	if tmpdir == "" {
		if tmpdir, err = os.MkdirTemp("", "asymsort-kernel-"); err != nil {
			return nil, err
		}
		defer os.RemoveAll(tmpdir)
	} else if err := os.MkdirAll(tmpdir, 0o755); err != nil {
		return nil, err
	}
	staged := filepath.Join(tmpdir, fmt.Sprintf("asymsort-kernel-%d-in", os.Getpid()))
	outBin := filepath.Join(tmpdir, fmt.Sprintf("asymsort-kernel-%d-out", os.Getpid()))
	defer os.Remove(staged)
	defer os.Remove(outBin)
	if err := extmem.WriteRecordsFile(staged, in); err != nil {
		return nil, err
	}

	start := time.Now()
	res, err := k.Ext(extmem.Config{
		Mem: int(memBytes / extmem.RecordBytes), Block: f.b, K: f.k,
		Omega: float64(f.omega), TmpDir: tmpdir, Procs: f.procs,
	}, staged, outBin, p)
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(start)

	fmt.Printf("  budget  : M=%d records (%s), B=%d records, ω=%d\n",
		int(memBytes/extmem.RecordBytes), fmtBytes(memBytes), f.b, f.omega)
	for _, rep := range res.Sorts {
		fmt.Printf("  sort    : n=%d, k=%d, fan-in=%d, %d runs, %d merge levels\n",
			rep.N, rep.K, rep.FanIn, rep.Runs, rep.Levels)
	}
	fmt.Printf("  total   : %d reads, %d writes, device cost R+ωW = %d\n",
		res.Total.Reads, res.Total.Writes, res.Total.Cost(f.omega))
	if res.Total.Writes != res.PlanWrites {
		return nil, fmt.Errorf("INTERNAL ERROR: measured %d block writes, composition plan says %d",
			res.Total.Writes, res.PlanWrites)
	}
	fmt.Printf("  plan    : %d block writes — matches the measured ledger exactly\n", res.PlanWrites)
	fmt.Printf("  elapsed : %v\n", elapsed.Round(time.Millisecond))

	return extmem.ReadRecordsFile(outBin)
}

// writeRecords writes result records one per line — "key value" pairs,
// or bare keys for the sort kernel ('-' = stdout).
func writeRecords(path string, recs []seq.Record, withVals bool) error {
	var w io.Writer = os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	for _, r := range recs {
		var err error
		if withVals {
			_, err = fmt.Fprintf(bw, "%d %d\n", r.Key, r.Val)
		} else {
			_, err = fmt.Fprintln(bw, r.Key)
		}
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}
