package main

// The ext model: sort a file larger than RAM with the internal/extmem
// engine. Under the default text dialect, keys are staged into a
// binary record file (payload = line index, so records are unique
// under seq.TotalLess as the engine requires), sorted under the memory
// budget, and streamed back out as text. Under -wire binary, input and
// output are internal/wire record frames: a chunked frame (or stdin)
// is spooled raw into the staged file with no parse, and a contiguous
// frame file skips staging entirely — the frame file itself is handed
// to the engine with Config.InSkip covering the header slot, so the
// staging write (the expensive op, charged ω in the paper's model)
// vanishes. Verification is streaming in every dialect — order check
// plus a record checksum against the input — since the whole point is
// that nothing here fits in memory.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"asymsort/internal/extmem"
	"asymsort/internal/seq"
	"asymsort/internal/serve"
	"asymsort/internal/wire"
	"asymsort/internal/xrand"
)

// runExt drives one external sort end to end, funneling every failure
// through a single error return so the staging/spill cleanup defers in
// extRun always fire before the process exits.
func runExt(inPath, outPath, memFlag string, blockRecs int, omega uint64, k, fanin int,
	tmpdir string, n int, seed uint64, procs int, wireMode string) {
	if err := extRun(inPath, outPath, memFlag, blockRecs, omega, k, fanin, tmpdir, n, seed, procs, wireMode); err != nil {
		fmt.Fprintf(os.Stderr, "asymsort: %v\n", err)
		os.Exit(1)
	}
}

// extChunk is the record granularity of the CLI's staging and
// verification streams.
const extChunk = 1 << 15

// checksum is an order-independent digest of a record multiset.
type checksum struct {
	n        int
	sum, xor uint64
}

func (c *checksum) add(r seq.Record) {
	h := xrand.Mix(r.Key ^ xrand.Mix(r.Val))
	c.n++
	c.sum += h
	c.xor ^= h
}

// extRun stages, sorts, verifies, and reports; its defers remove the
// staged record files (and an auto-created temp dir) on every path.
func extRun(inPath, outPath, memFlag string, blockRecs int, omega uint64, k, fanin int,
	tmpdir string, n int, seed uint64, procs int, wireMode string) error {
	binaryWire := false
	switch wireMode {
	case "", "text":
	case "binary":
		binaryWire = true
	default:
		return fmt.Errorf("bad -wire %q (text | binary)", wireMode)
	}
	memBytes, err := parseSize(memFlag)
	if err != nil {
		return fmt.Errorf("bad -mem: %v", err)
	}
	memRecs := int(memBytes / extmem.RecordBytes)

	if tmpdir == "" {
		tmpdir, err = os.MkdirTemp("", "asymsort-ext-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(tmpdir)
	} else if err := os.MkdirAll(tmpdir, 0o755); err != nil {
		return err
	}

	// Stage the input as a binary record file.
	staged := filepath.Join(tmpdir, fmt.Sprintf("asymsort-ext-%d-in", os.Getpid()))
	sortedBin := filepath.Join(tmpdir, fmt.Sprintf("asymsort-ext-%d-out", os.Getpid()))
	defer os.Remove(staged)
	defer os.Remove(sortedBin)

	var inSum checksum
	var src string
	engineIn := staged
	inSkip := 0
	start := time.Now()
	switch {
	case inPath != "" && binaryWire:
		src = inPath
		if src == "-" {
			src = "stdin"
		}
		zeroCopy, err := stageBinaryRecords(inPath, staged, &inSum)
		if err != nil {
			return err
		}
		if zeroCopy {
			// Contiguous seekable frame: the frame file IS the staged
			// input (header = one record slot, skipped via InSkip), so
			// staging cost only the verification read pass, no write.
			engineIn, inSkip = inPath, 1
			src += " (contiguous frame, staged in place)"
		}
	case inPath != "":
		src = inPath
		if src == "-" {
			src = "stdin"
		}
		if err := stageTextKeys(inPath, staged, &inSum); err != nil {
			return err
		}
	default:
		src = "generated uniform workload"
		if err := stageUniform(staged, n, seed, &inSum); err != nil {
			return err
		}
	}
	stageTime := time.Since(start)

	cfg := extmem.Config{
		Mem: memRecs, Block: blockRecs, K: k, Omega: float64(omega),
		FanIn: fanin, TmpDir: tmpdir, Procs: procs, InSkip: inSkip,
	}
	fmt.Printf("external sort: n=%d records (%s) from %s\n",
		inSum.n, fmtBytes(int64(inSum.n)*extmem.RecordBytes), src)

	rep, err := extmem.Sort(cfg, engineIn, sortedBin)
	if err != nil {
		return err
	}
	fmt.Printf("  budget   : M=%d records (%s), B=%d records (%s), ω=%d\n",
		rep.Mem, fmtBytes(int64(rep.Mem)*extmem.RecordBytes),
		rep.Block, fmtBytes(int64(rep.Block)*extmem.RecordBytes), omega)
	fmt.Printf("  plan     : k=%d, fan-in=%d, %d runs, %d merge levels (Appendix A: ω/lg(M/B) admits k=%d)\n",
		rep.K, rep.FanIn, rep.Runs, rep.Levels,
		extmem.ChooseK(float64(omega), rep.Mem, rep.Block))
	engine := "sequential engine"
	if rep.Procs > 1 {
		engine = fmt.Sprintf("pipelined formation + %d-worker parallel merge + async IO", rep.Procs)
	}
	fmt.Printf("  procs    : %d (%s)\n", rep.Procs, engine)
	for lvl, io := range rep.LevelIO {
		name := fmt.Sprintf("merge %d", lvl)
		if lvl == 0 {
			name = "runs"
		}
		fmt.Printf("  level %-8s: %10d block reads %10d block writes\n", name, io.Reads, io.Writes)
	}
	fmt.Printf("  total    : %d reads, %d writes, device cost R+ωW = %.0f\n",
		rep.Total.Reads, rep.Total.Writes, rep.Cost())
	fmt.Printf("  elapsed  : stage %v, run formation %v, merge %v\n",
		stageTime.Round(time.Millisecond), rep.FormTime.Round(time.Millisecond),
		rep.MergeTime.Round(time.Millisecond))
	// One greppable figure for scripts (the CI speedup gate): the
	// engine's own wall-clock, staging and verification excluded.
	fmt.Printf("  sort wall: %dms\n", (rep.FormTime + rep.MergeTime).Milliseconds())

	// Streaming verification: sorted order + multiset checksum.
	outSum, err := verifySortedBinary(sortedBin, outPath, binaryWire)
	if err != nil {
		return err
	}
	if outSum != inSum {
		return fmt.Errorf("INTERNAL ERROR: output is not a permutation of the input (checksum mismatch)")
	}
	fmt.Println("  output verified: sorted, record checksum matches input")
	if outPath != "" {
		what := "sorted keys"
		if binaryWire {
			what = "sorted records (contiguous frame)"
		}
		fmt.Printf("  wrote %d %s to %s\n", outSum.n, what, outPath)
	}
	return nil
}

// stageBinaryRecords stages a wire frame as the engine's input. A
// seekable contiguous frame file needs no staging write at all — the
// header is exactly one record slot, so the frame file itself becomes
// the engine input (InSkip=1) and this function only streams the
// verification checksum. Chunked frames (and stdin, which cannot be
// handed over in place) are spooled raw into dst, folding each record
// into the checksum on the way past.
func stageBinaryRecords(inPath, dst string, sum *checksum) (zeroCopy bool, err error) {
	if inPath != "-" {
		f, err := os.Open(inPath)
		if err != nil {
			return false, err
		}
		hdrRaw := make([]byte, wire.HeaderBytes)
		_, rerr := io.ReadFull(f, hdrRaw)
		f.Close()
		if rerr != nil {
			return false, fmt.Errorf("%s: reading frame header: %v", inPath, rerr)
		}
		hdr, err := wire.ParseHeader(hdrRaw)
		if err != nil {
			return false, fmt.Errorf("%s: %v", inPath, err)
		}
		if hdr.Contiguous {
			return true, checksumContiguousFrame(inPath, hdr.Count, sum)
		}
	}
	var r io.Reader = os.Stdin
	if inPath != "-" {
		f, err := os.Open(inPath)
		if err != nil {
			return false, err
		}
		defer f.Close()
		r = f
	}
	fr, err := wire.NewReader(bufio.NewReaderSize(r, 1<<20))
	if err != nil {
		return false, err
	}
	out, err := os.Create(dst)
	if err != nil {
		return false, err
	}
	defer out.Close() // no-op after the explicit Close below
	bw := bufio.NewWriterSize(out, 1<<20)
	if _, err := fr.Spool(&recordSummer{w: bw, sum: sum}); err != nil {
		return false, err
	}
	if err := bw.Flush(); err != nil {
		return false, err
	}
	return false, out.Close()
}

// recordSummer folds every record that passes through it into the
// checksum. wire.Reader.Spool always writes whole chunks of whole
// records, so writes arrive record-aligned.
type recordSummer struct {
	w   io.Writer
	sum *checksum
}

func (rs *recordSummer) Write(p []byte) (int, error) {
	if len(p)%extmem.RecordBytes != 0 {
		return 0, fmt.Errorf("unaligned record payload write (%d bytes)", len(p))
	}
	for b := p; len(b) > 0; b = b[extmem.RecordBytes:] {
		rs.sum.add(seq.Record{
			Key: binary.LittleEndian.Uint64(b),
			Val: binary.LittleEndian.Uint64(b[8:]),
		})
	}
	return rs.w.Write(p)
}

// checksumContiguousFrame streams the payload of a contiguous frame
// file into the checksum — the only read the zero-copy handoff pays
// before the engine takes the file over.
func checksumContiguousFrame(path string, count int64, sum *checksum) error {
	bf, err := extmem.OpenBlockFile(path, 1, nil)
	if err != nil {
		return err
	}
	defer bf.Close()
	if got := int64(bf.Len() - 1); got != count {
		return fmt.Errorf("%s: contiguous frame announces %d records but the file holds %d", path, count, got)
	}
	buf := make([]seq.Record, extChunk)
	for off := 1; off < bf.Len(); off += len(buf) {
		if rem := bf.Len() - off; rem < len(buf) {
			buf = buf[:rem]
		}
		if err := bf.ReadAt(off, buf); err != nil {
			return err
		}
		for _, r := range buf {
			sum.add(r)
		}
	}
	return nil
}

// stageTextKeys converts one-key-per-line text into a binary record
// file, payload = line index.
func stageTextKeys(inPath, dst string, sum *checksum) error {
	var r io.Reader = os.Stdin
	if inPath != "-" {
		f, err := os.Open(inPath)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	bf, err := extmem.CreateBlockFile(dst, 1, nil)
	if err != nil {
		return err
	}
	defer bf.Close()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	batch := make([]seq.Record, 0, extChunk)
	off, line := 0, 0
	flush := func() error {
		if err := bf.WriteAt(off, batch); err != nil {
			return err
		}
		off += len(batch)
		batch = batch[:0]
		return nil
	}
	for sc.Scan() {
		txt := sc.Text()
		line++
		if txt == "" {
			continue
		}
		key, err := strconv.ParseUint(txt, 10, 64)
		if err != nil {
			return fmt.Errorf("line %d: %v", line, err)
		}
		rec := seq.Record{Key: key, Val: uint64(off + len(batch))}
		sum.add(rec)
		batch = append(batch, rec)
		if len(batch) == cap(batch) {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	return flush()
}

// stageUniform streams the seq.Uniform workload to a binary record file
// without materializing it: same key formula, bounded memory.
func stageUniform(dst string, n int, seed uint64, sum *checksum) error {
	bf, err := extmem.CreateBlockFile(dst, 1, nil)
	if err != nil {
		return err
	}
	defer bf.Close()
	r := xrand.New(seed)
	batch := make([]seq.Record, 0, extChunk)
	for i := 0; i < n; i++ {
		rec := seq.Record{Key: (r.Next() << 24) | uint64(i)&0xffffff, Val: uint64(i)}
		sum.add(rec)
		batch = append(batch, rec)
		if len(batch) == cap(batch) {
			if err := bf.WriteAt(i+1-len(batch), batch); err != nil {
				return err
			}
			batch = batch[:0]
		}
	}
	return bf.WriteAt(n-len(batch), batch)
}

// verifySortedBinary streams the sorted binary file, checking key
// order and accumulating the checksum; when outPath is non-empty it
// simultaneously writes the output ('-' = stdout) — keys as text by
// default, or a contiguous wire frame (header + raw record bytes, no
// per-record encode beyond the LE packing) when binaryOut is set.
func verifySortedBinary(binPath, outPath string, binaryOut bool) (checksum, error) {
	var sum checksum
	bf, err := extmem.OpenBlockFile(binPath, 1, nil)
	if err != nil {
		return sum, err
	}
	defer bf.Close()

	var tw *bufio.Writer
	var tf *os.File // closed explicitly: close errors mean a truncated -out
	if outPath != "" {
		var w io.Writer = os.Stdout
		if outPath != "-" {
			f, err := os.Create(outPath)
			if err != nil {
				return sum, err
			}
			defer f.Close() // no-op after the explicit Close below
			tf = f
			w = f
		}
		tw = bufio.NewWriterSize(w, 1<<20)
		if binaryOut {
			if err := wire.WriteContiguousHeader(tw, int64(bf.Len())); err != nil {
				return sum, err
			}
		}
	}

	buf := make([]seq.Record, extChunk)
	var prev uint64
	have := false
	var line, raw []byte
	for off := 0; off < bf.Len(); off += len(buf) {
		if rem := bf.Len() - off; rem < len(buf) {
			buf = buf[:rem]
		}
		if err := bf.ReadAt(off, buf); err != nil {
			return sum, err
		}
		for _, r := range buf {
			if have && r.Key < prev {
				return sum, fmt.Errorf("output not sorted at record %d: %d after %d", sum.n, r.Key, prev)
			}
			prev, have = r.Key, true
			sum.add(r)
			if tw != nil && !binaryOut {
				line = strconv.AppendUint(line[:0], r.Key, 10)
				line = append(line, '\n')
				if _, err := tw.Write(line); err != nil {
					return sum, err
				}
			}
		}
		if tw != nil && binaryOut {
			if need := len(buf) * wire.RecordBytes; cap(raw) < need {
				raw = make([]byte, need)
			}
			rb := raw[:len(buf)*wire.RecordBytes]
			wire.EncodeRecords(rb, buf)
			if _, err := tw.Write(rb); err != nil {
				return sum, err
			}
		}
	}
	if tw != nil {
		if err := tw.Flush(); err != nil {
			return sum, err
		}
		if tf != nil {
			if err := tf.Close(); err != nil {
				return sum, fmt.Errorf("closing %s: %w", outPath, err)
			}
		}
	}
	return sum, nil
}

// parseSize and fmtBytes are the shared size helpers (serve owns the
// canonical implementation so asymsortd's -mem parses identically).
func parseSize(s string) (int64, error) { return serve.ParseSize(s) }

func fmtBytes(n int64) string { return serve.FmtBytes(n) }
