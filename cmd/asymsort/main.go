// Command asymsort sorts a generated workload under a chosen asymmetric
// memory model and prints the resulting cost ledger — a hands-on view of
// the paper's trade-offs.
//
// Usage:
//
//	asymsort -model ram  -n 100000 -omega 16
//	asymsort -model aem  -n 200000 -omega 16 -k 8 -algo merge
//	asymsort -model co   -n  65536 -omega 8
//	asymsort -model pram -n  65536 -omega 8
package main

import (
	"flag"
	"fmt"
	"os"

	"asymsort/internal/aem"
	"asymsort/internal/aram"
	"asymsort/internal/co"
	"asymsort/internal/core/aemsample"
	"asymsort/internal/core/aemsort"
	"asymsort/internal/core/buffertree"
	"asymsort/internal/core/cosort"
	"asymsort/internal/core/pramsort"
	"asymsort/internal/core/ramsort"
	"asymsort/internal/cost"
	"asymsort/internal/icache"
	"asymsort/internal/seq"
	"asymsort/internal/wd"
)

func main() {
	var (
		model = flag.String("model", "ram", "memory model: ram | pram | aem | co")
		algo  = flag.String("algo", "", "aem algorithm: merge | sample | heap (default merge)")
		n     = flag.Int("n", 100000, "number of records")
		omega = flag.Uint64("omega", 8, "write cost ω")
		k     = flag.Int("k", 4, "read-multiplier k (AEM models)")
		m     = flag.Int("m", 4096, "primary memory M in records (AEM) / words (co)")
		b     = flag.Int("b", 64, "block size B in records/words")
		seed  = flag.Uint64("seed", 1, "workload seed")
	)
	flag.Parse()

	in := seq.Uniform(*n, *seed)
	fmt.Printf("sorting n=%d uniform records, ω=%d, model=%s\n", *n, *omega, *model)

	var stats cost.Snapshot
	var extra string
	switch *model {
	case "ram":
		mem := aram.New(*omega)
		arr := aram.FromSlice(mem, in)
		base := mem.Stats()
		out := ramsort.TreeSort(arr)
		stats = mem.Stats().Sub(base)
		check(out.Unwrap(), in)
		extra = "element reads/writes (§3 tree-insertion sort)"
	case "pram":
		c := wd.NewRoot(*omega)
		arr := wd.NewArray[seq.Record](*n)
		copy(arr.Unwrap(), in)
		out := pramsort.Sort(c, arr, pramsort.Options{Seed: *seed, DeepSplit: true})
		check(out.Unwrap(), in)
		stats = c.Work()
		extra = fmt.Sprintf("depth=%d, Brent T(n,64)=%d (Theorem 3.2)", c.Depth(), c.BrentTime(64))
	case "aem":
		ma := aem.New(*m, *b, *omega, *m/(4**b)+8)
		f := ma.FileFrom(in)
		base := ma.Stats()
		var out *aem.File
		switch *algo {
		case "", "merge":
			out = aemsort.MergeSort(ma, f, *k)
		case "sample":
			out = aemsample.Sort(ma, f, *k, *seed)
		case "heap":
			out = buffertree.HeapSort(ma, f, *k)
		default:
			fmt.Fprintf(os.Stderr, "asymsort: unknown -algo %q\n", *algo)
			os.Exit(2)
		}
		stats = ma.Stats().Sub(base)
		check(out.Unwrap(), in)
		extra = fmt.Sprintf("block transfers at M=%d B=%d k=%d (§4)", *m, *b, *k)
	case "co":
		cache := icache.New(*b, *m / *b, *omega, icache.PolicyRWLRU)
		c := co.NewCtx(cache)
		arr := co.FromSlice(c, in)
		base := cache.Stats()
		out := cosort.Sort(c, arr, cosort.Options{Seed: *seed})
		cache.Flush()
		stats = cache.Stats().Sub(base)
		check(out.Unwrap(), in)
		extra = fmt.Sprintf("cache misses/write-backs under read-write LRU, depth=%d (§5.1)", c.WD.Depth())
	default:
		fmt.Fprintf(os.Stderr, "asymsort: unknown -model %q\n", *model)
		os.Exit(2)
	}

	fmt.Printf("  reads  = %d\n", stats.Reads)
	fmt.Printf("  writes = %d\n", stats.Writes)
	fmt.Printf("  cost   = reads + ω·writes = %d\n", stats.Cost(*omega))
	fmt.Printf("  R/W    = %s\n", ratio(stats))
	fmt.Printf("  note   : %s\n", extra)
}

func ratio(s cost.Snapshot) string {
	if s.Writes == 0 {
		return "inf"
	}
	return fmt.Sprintf("%.2f", float64(s.Reads)/float64(s.Writes))
}

func check(out, in []seq.Record) {
	if !seq.IsSorted(out) || !seq.IsPermutation(out, in) {
		fmt.Fprintln(os.Stderr, "asymsort: INTERNAL ERROR: output not a sorted permutation")
		os.Exit(1)
	}
	fmt.Println("  output verified: sorted permutation of input")
}
