// Command asymsort sorts records under a chosen execution backend.
//
// The simulation models (ram, pram, aem, co) sort a generated workload
// and print the resulting cost ledger — a hands-on view of the paper's
// trade-offs. The native model runs the same algorithms on the rt
// runtime's hardware backend: real slices, a goroutine fork-join pool,
// and wall-clock instead of simulated cost, sorting either a generated
// workload or real data from a file or stdin.
//
// Usage:
//
//	asymsort -model ram  -n 100000 -omega 16
//	asymsort -model aem  -n 200000 -omega 16 -k 8 -algo merge
//	asymsort -model co   -n  65536 -omega 8
//	asymsort -model pram -n  65536 -omega 8
//
//	asymsort -model native -n 1000000 -algo co -compare
//	asymsort -model native -in keys.txt -out sorted.txt
//	generate-keys | asymsort -model native -in -
//
//	asymsort -model ext -in big.txt -out sorted.txt -mem 8MB
//	asymsort -model ext -n 10000000 -mem 4MB -omega 16 -tmpdir /mnt/scratch
//	asymsort -model ext -in big.txt -out sorted.txt -mem 8MB -procs 4
//	asymsort -model ext -wire binary -in recs.asrf -out sorted.asrf -mem 8MB
//
// Native and ext input is one unsigned 64-bit key per line (payload =
// line number); -out writes the sorted keys one per line. With
// -wire binary the ext model instead reads and writes internal/wire
// record frames: chunked frames and stdin are spooled raw into the
// staged file with no per-record parse, a contiguous frame file is
// handed to the engine in place (extmem.Config.InSkip skips the
// header slot — no staging copy at all), and -out emits a contiguous
// frame. The ext
// model runs the internal/extmem external-memory engine: it sorts
// files larger than RAM under the -mem budget, spilling sorted runs to
// -tmpdir and merging them at the fan-in the paper's Appendix A rule
// picks for the device's read/write cost ratio ω (override with
// -fanin), and reports the measured block-IO ledger next to wall-clock.
// With -procs P > 1 (the default is GOMAXPROCS) the engine pipelines
// run formation, cuts every merge into P worker-private key ranges,
// and overlaps block IO with compute — the block-write ledger is
// identical to the sequential engine's at any P; -procs 1 selects the
// strictly sequential baseline.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime/pprof"
	"strconv"
	"time"

	"asymsort/internal/aem"
	"asymsort/internal/aram"
	"asymsort/internal/co"
	"asymsort/internal/core/aemsample"
	"asymsort/internal/core/aemsort"
	"asymsort/internal/core/buffertree"
	"asymsort/internal/core/cosort"
	"asymsort/internal/core/pramsort"
	"asymsort/internal/core/ramsort"
	"asymsort/internal/cost"
	"asymsort/internal/exp"
	"asymsort/internal/icache"
	"asymsort/internal/obs"
	"asymsort/internal/rt"
	"asymsort/internal/seq"
	"asymsort/internal/wd"
)

func main() {
	var (
		model   = flag.String("model", "ram", "backend: ram | pram | aem | co (simulated) | native | ext")
		algo    = flag.String("algo", "", "aem: merge | sample | heap; native: merge | co | pram (default merge)")
		n       = flag.Int("n", 100000, "number of generated records (ignored with -in)")
		omega   = flag.Uint64("omega", 8, "write cost ω (structural under -model native; measured device read/write ratio under -model ext — see rt.Ctx.Omega)")
		k       = flag.Int("k", 4, "read-multiplier k (AEM models; 0 under ext = choose from ω)")
		m       = flag.Int("m", 4096, "primary memory M in records (AEM) / words (co)")
		b       = flag.Int("b", 64, "block size B in records/words (ext: device block in records)")
		seed    = flag.Uint64("seed", 1, "workload seed")
		procs   = flag.Int("procs", 0, "native/ext workers (0 = GOMAXPROCS)")
		inPath  = flag.String("in", "", "native/ext input file of keys, one per line ('-' = stdin)")
		outPath = flag.String("out", "", "native/ext output file for sorted keys ('-' = stdout)")
		compare = flag.Bool("compare", false, "native: also time the single-worker run and slices-based sort")
		mem     = flag.String("mem", "64MB", "ext: primary-memory budget, e.g. 8MB, 512KB, or bytes")
		fanin   = flag.Int("fanin", 0, "ext: merge fan-in override (0 = kM/B from the Appendix A rule)")
		tmpdir  = flag.String("tmpdir", "", "ext: spill directory (default: a fresh dir under os.TempDir)")
		wireFmt = flag.String("wire", "text", "ext: -in/-out dialect: text (one key per line) | binary (record frames; a contiguous frame file is handed to the engine with no staging copy)")
		kname   = flag.String("kernel", "sort", "kernel to run: sort | semisort | histogram | top-k | merge-join (non-sort kernels take -model co | pram | native | ext)")
		buckets = flag.Int("buckets", 0, "histogram kernel: bucket count")
		topk    = flag.Int("topk", 0, "top-k kernel: selection size")
		left    = flag.Int("left", 0, "merge-join kernel: size of the left relation (the first records of the input)")
		cpuprof = flag.String("cpuprofile", "", "write a CPU profile of this run (one job, flags to finish) to the given file")
		version = flag.Bool("version", false, "print build info and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(obs.ReadBuildInfo())
		return
	}
	// The profile-around-one-job hook: the whole run — staging, the
	// sort/kernel itself, verification, output — lands in one pprof
	// profile, the offline twin of asymsortd's -debug-addr listener.
	if *cpuprof != "" {
		f, err := os.Create(*cpuprof)
		if err != nil {
			fmt.Fprintf(os.Stderr, "asymsort: bad -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "asymsort: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
			fmt.Printf("  cpu profile written to %s\n", *cpuprof)
		}()
	}

	if *kname != "sort" {
		// -k keeps the sims' default of 4; under ext it means "choose
		// from ω" unless set explicitly (same rule as the sort path).
		extK := 0
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "k" {
				extK = *k
			}
		})
		runKernel(kernelFlags{
			name: *kname, buckets: *buckets, topk: *topk, left: *left,
			model: *model, n: *n, m: *m, b: *b, omega: *omega, seed: *seed,
			procs: *procs, inPath: *inPath, outPath: *outPath,
			mem: *mem, k: extK, tmpdir: *tmpdir,
		})
		return
	}

	if *model != "ext" {
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "wire" {
				fmt.Fprintln(os.Stderr, "asymsort: -wire applies only to -model ext")
				os.Exit(2)
			}
		})
	}
	if *model == "native" {
		runNative(*algo, *n, *omega, *seed, *procs, *inPath, *outPath, *compare)
		return
	}
	if *model == "ext" {
		// -k keeps its AEM default of 4 for the simulated models; under
		// ext an unset -k means "choose from ω" (Appendix A), so only
		// forward it when the user said -k explicitly. -m is the
		// simulated models' memory knob — ext takes -mem (a byte size);
		// accepting -m silently would run a budget ~1000x off what the
		// user asked for, so reject it outright.
		extK := 0
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "k":
				extK = *k
			case "m":
				fmt.Fprintln(os.Stderr, "asymsort: -m sets the simulated models' memory in records; -model ext takes -mem with a byte size (e.g. -mem 8MB)")
				os.Exit(2)
			}
		})
		runExt(*inPath, *outPath, *mem, *b, *omega, extK, *fanin, *tmpdir, *n, *seed, *procs, *wireFmt)
		return
	}

	in := seq.Uniform(*n, *seed)
	fmt.Printf("sorting n=%d uniform records, ω=%d, model=%s\n", *n, *omega, *model)

	var stats cost.Snapshot
	var extra string
	switch *model {
	case "ram":
		mem := aram.New(*omega)
		arr := aram.FromSlice(mem, in)
		base := mem.Stats()
		out := ramsort.TreeSort(arr)
		stats = mem.Stats().Sub(base)
		check(out.Unwrap(), in)
		extra = "element reads/writes (§3 tree-insertion sort)"
	case "pram":
		c := wd.NewRoot(*omega)
		arr := wd.NewArray[seq.Record](*n)
		copy(arr.Unwrap(), in)
		out := pramsort.Sort(c, arr, pramsort.Options{Seed: *seed, DeepSplit: true})
		check(out.Unwrap(), in)
		stats = c.Work()
		extra = fmt.Sprintf("depth=%d, Brent T(n,64)=%d (Theorem 3.2)", c.Depth(), c.BrentTime(64))
	case "aem":
		ma := aem.New(*m, *b, *omega, *m/(4**b)+8)
		f := ma.FileFrom(in)
		base := ma.Stats()
		var out *aem.File
		switch *algo {
		case "", "merge":
			out = aemsort.MergeSort(ma, f, *k)
		case "sample":
			out = aemsample.Sort(ma, f, *k, *seed)
		case "heap":
			out = buffertree.HeapSort(ma, f, *k)
		default:
			fmt.Fprintf(os.Stderr, "asymsort: unknown -algo %q\n", *algo)
			os.Exit(2)
		}
		stats = ma.Stats().Sub(base)
		check(out.Unwrap(), in)
		extra = fmt.Sprintf("block transfers at M=%d B=%d k=%d (§4)", *m, *b, *k)
	case "co":
		cache := icache.New(*b, *m / *b, *omega, icache.PolicyRWLRU)
		c := co.NewCtx(cache)
		arr := co.FromSlice(c, in)
		base := cache.Stats()
		out := cosort.Sort(c, arr, cosort.Options{Seed: *seed})
		cache.Flush()
		stats = cache.Stats().Sub(base)
		check(out.Unwrap(), in)
		extra = fmt.Sprintf("cache misses/write-backs under read-write LRU, depth=%d (§5.1)", c.WD.Depth())
	default:
		fmt.Fprintf(os.Stderr, "asymsort: unknown -model %q\n", *model)
		os.Exit(2)
	}

	fmt.Printf("  reads  = %d\n", stats.Reads)
	fmt.Printf("  writes = %d\n", stats.Writes)
	fmt.Printf("  cost   = reads + ω·writes = %d\n", stats.Cost(*omega))
	fmt.Printf("  R/W    = %s\n", ratio(stats))
	fmt.Printf("  note   : %s\n", extra)
}

// runNative sorts on the hardware backend and reports wall-clock.
func runNative(algo string, n int, omega, seed uint64, procs int, inPath, outPath string, compare bool) {
	if algo == "" {
		algo = "merge"
	}
	alg, ok := exp.LookupNativeAlgo(algo)
	if !ok {
		fmt.Fprintf(os.Stderr, "asymsort: unknown native -algo %q (merge | co | pram)\n", algo)
		os.Exit(2)
	}
	var in []seq.Record
	var src string
	if inPath != "" {
		var err error
		in, err = readKeys(inPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "asymsort: %v\n", err)
			os.Exit(1)
		}
		src = inPath
		if src == "-" {
			src = "stdin"
		}
	} else {
		in = seq.Uniform(n, seed)
		src = "generated uniform workload"
	}
	pool := rt.NewPool(procs)
	sortWith := func(p *rt.Pool) []seq.Record {
		return alg.Run(p, in, seed, omega)
	}

	fmt.Printf("sorting n=%d records from %s, model=native, algo=%s, procs=%d\n",
		len(in), src, algo, pool.Procs())
	start := time.Now()
	out := sortWith(pool)
	elapsed := time.Since(start)
	check(out, in)
	rate := float64(len(in)) / elapsed.Seconds() / 1e6
	fmt.Printf("  elapsed    = %v (%.2f Mrec/s)\n", elapsed, rate)

	if compare {
		start = time.Now()
		sortWith(rt.NewPool(1))
		serial := time.Since(start)
		fmt.Printf("  1 worker   = %v (speedup %.2fx on %d workers)\n",
			serial, serial.Seconds()/elapsed.Seconds(), pool.Procs())
		ref := append([]seq.Record(nil), in...)
		start = time.Now()
		rt.SortRecords(rt.NewPool(1), ref)
		fmt.Printf("  slices ref = %v (sequential slices-based sort)\n", time.Since(start))
	}
	if outPath != "" {
		if err := writeKeys(outPath, out); err != nil {
			fmt.Fprintf(os.Stderr, "asymsort: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("  wrote %d sorted keys to %s\n", len(out), outPath)
	}
}

// readKeys parses one unsigned 64-bit key per line; the payload is the
// line index, preserving the repository-wide unique (key, payload) pairs.
func readKeys(path string) ([]seq.Record, error) {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var recs []seq.Record
	line := 0
	for sc.Scan() {
		txt := sc.Text()
		line++
		if txt == "" {
			continue
		}
		key, err := strconv.ParseUint(txt, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", line, err)
		}
		recs = append(recs, seq.Record{Key: key, Val: uint64(len(recs))})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return recs, nil
}

// writeKeys writes sorted keys one per line.
func writeKeys(path string, recs []seq.Record) error {
	var w io.Writer = os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	for _, r := range recs {
		if _, err := fmt.Fprintln(bw, r.Key); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func ratio(s cost.Snapshot) string {
	if s.Writes == 0 {
		return "inf"
	}
	return fmt.Sprintf("%.2f", float64(s.Reads)/float64(s.Writes))
}

func check(out, in []seq.Record) {
	if !seq.IsSorted(out) || !seq.IsPermutation(out, in) {
		fmt.Fprintln(os.Stderr, "asymsort: INTERNAL ERROR: output not a sorted permutation")
		os.Exit(1)
	}
	fmt.Println("  output verified: sorted permutation of input")
}
