// Command promcheck validates a saved Prometheus text exposition — a
// /metrics scrape captured to a file — and asserts simple invariants on
// it. It is the CI-side half of the observability contract: the smoke
// workflow scrapes asymsortd mid-load and again after the drain, and
// promcheck turns those files into pass/fail gates instead of artifacts
// nobody reads.
//
// Usage:
//
//	promcheck METRICS.txt
//	promcheck -zero asymsortd_queue_depth,asymsortd_leases METRICS.txt
//	promcheck -nonzero asymsortd_jobs_total -min asymsortd_jobs_total=8 METRICS.txt
//	cat METRICS.txt | promcheck -
//
// With no assertion flags it still parses the file through the strict
// reader in internal/obs (TYPE-before-sample ordering, label syntax,
// histogram suffix resolution), so a bare run is an exposition-validity
// check. -zero and -nonzero take comma-separated metric names and
// assert the sum across each name's series; -min takes name=value
// pairs and asserts sum >= value. Exit status 1 on any failure, with
// one line per violated assertion on stderr.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"asymsort/internal/obs"
)

func main() {
	var (
		zero    = flag.String("zero", "", "comma-separated metrics whose series must sum to zero")
		nonzero = flag.String("nonzero", "", "comma-separated metrics whose series must sum to non-zero")
		min     = flag.String("min", "", "comma-separated name=value pairs: each metric's series sum must be >= value")
		version = flag.Bool("version", false, "print build info and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(obs.ReadBuildInfo())
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: promcheck [-zero m1,m2] [-nonzero m1,m2] [-min m1=v1,m2=v2] <exposition-file | ->")
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *zero, *nonzero, *min); err != nil {
		fmt.Fprintf(os.Stderr, "promcheck: %v\n", err)
		os.Exit(1)
	}
}

func run(path, zero, nonzero, min string) error {
	in := os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	snap, err := obs.ParseProm(in)
	if err != nil {
		return fmt.Errorf("invalid exposition: %v", err)
	}

	var violations []string
	have := func(name string) bool {
		for _, n := range snap.Names() {
			if n == name {
				return true
			}
		}
		return false
	}
	for _, name := range splitList(zero) {
		if !have(name) {
			violations = append(violations, fmt.Sprintf("-zero %s: metric not in exposition", name))
		} else if v := snap.Sum(name); v != 0 {
			violations = append(violations, fmt.Sprintf("-zero %s: sum is %g", name, v))
		}
	}
	for _, name := range splitList(nonzero) {
		if !have(name) {
			violations = append(violations, fmt.Sprintf("-nonzero %s: metric not in exposition", name))
		} else if snap.Sum(name) == 0 {
			violations = append(violations, fmt.Sprintf("-nonzero %s: sum is 0", name))
		}
	}
	for _, pair := range splitList(min) {
		name, valStr, ok := strings.Cut(pair, "=")
		if !ok {
			return fmt.Errorf("bad -min entry %q (want name=value)", pair)
		}
		want, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			return fmt.Errorf("bad -min value in %q: %v", pair, err)
		}
		if !have(name) {
			violations = append(violations, fmt.Sprintf("-min %s: metric not in exposition", name))
		} else if v := snap.Sum(name); v < want {
			violations = append(violations, fmt.Sprintf("-min %s: sum %g < %g", name, v, want))
		}
	}

	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, v)
		}
		return fmt.Errorf("%d assertion(s) failed on %s", len(violations), path)
	}
	fmt.Printf("promcheck: %s ok (%d samples, %d metrics)\n", path, len(snap.Samples), len(snap.Names()))
	return nil
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
