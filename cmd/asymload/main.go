// Command asymload is the deterministic load generator for asymsortd:
// it drives the daemon with a seeded mix of concurrent sort jobs —
// sizes, key shapes, and arrival spacing all derived from one seed, so
// a run is exactly reproducible — verifies every response on the wire
// (sorted order, record count, and an order-independent multiset
// checksum against what it sent), cross-checks the daemon's /stats
// ledgers (every ext job's measured block writes must equal the
// simulated AEM plan's), and prints a throughput/latency table,
// recordable as BENCH-style JSON rows via -json.
//
// -wire picks the dialect each job speaks: text (newline-decimal keys,
// the default), binary (internal/wire record frames both ways), or
// mixed (jobs alternate by id — the negotiation stress mode). The key
// mix, the checksum construction, and the -save dumps are identical
// across dialects, so a text run and a binary run with the same seed
// are directly diffable — and a per-wire-mode p50/p99 latency table is
// printed (and recorded under -json) whenever jobs ran.
//
// -kernels widens the mix beyond sort: jobs draw their kernel from the
// listed pool (any internal/kernel registry name) and post to the
// generic /v1/{kernel} endpoint. Non-sort jobs are verified
// differentially — the client recomputes the kernel's in-memory
// reference from the job's seed and compares the response record for
// record — and their ext ledgers join the same /stats identity check.
//
// -cluster points the same mix at an asymsortd coordinator instead of
// a solo daemon: only the sort kernel runs (the cluster front-end
// scatters /sort alone), the wire verification is unchanged — the
// coordinator's gather is byte-identical to a solo run, so the same
// checksums must hold — and the solo /stats ledger check is replaced
// by a coordinator /stats check: every job reached state "done", with
// a shard/retry/hedge summary printed per run.
//
// Usage:
//
//	asymload -addr http://127.0.0.1:8077 -jobs 8 -concurrency 8 -seed 1
//	asymload -jobs 8 -concurrency 1           # the serialized baseline
//	asymload -jobs 8 -model ext -save outdir  # dump job inputs/outputs
//	asymload -jobs 8 -wire binary             # record frames both ways
//	asymload -jobs 12 -kernels sort,semisort,histogram,top-k,merge-join
//
// The same seed with -concurrency 1 runs the identical job mix one at
// a time — the serialized baseline a shared-envelope speedup is
// measured against (the CI smoke gates concurrent/serialized ≥ 1.5×).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"text/tabwriter"
	"time"

	"asymsort/internal/exp"
	"asymsort/internal/obs"
	"asymsort/internal/seq"
	"asymsort/internal/wire"
	"asymsort/internal/xrand"
)

var shapeNames = []string{"uniform", "sorted", "reversed", "dups", "equal"}

// jobSpec is one job of the deterministic mix.
type jobSpec struct {
	id     int
	n      int
	shape  int
	seed   uint64
	binary bool   // speak the wire record-frame dialect both ways
	kernel string // registry kernel this job runs ("sort" = the classic path)
	// -mix scenario fields: class names the workload class ("small" or
	// "bulk", empty outside -mix), prio and deadline are sent as the
	// job's admission headers when set.
	class    string
	prio     int
	deadline time.Duration
}

func (sp jobSpec) wireName() string {
	if sp.binary {
		return "binary"
	}
	return "text"
}

// jobResult is what one finished job measured.
type jobResult struct {
	spec    jobSpec
	model   string
	memRecs int
	wall    time.Duration
	ttfb    time.Duration
	err     error
}

func main() {
	var (
		addr    = flag.String("addr", "http://127.0.0.1:8077", "asymsortd base URL")
		jobs    = flag.Int("jobs", 8, "number of jobs in the mix")
		conc    = flag.Int("concurrency", 0, "max in-flight jobs (0 = all at once; 1 = serialized baseline)")
		seed    = flag.Uint64("seed", 1, "mix seed: sizes, shapes, and per-job keys all derive from it")
		minN    = flag.Int("minn", 20000, "smallest job size in records")
		maxN    = flag.Int("maxn", 120000, "largest job size in records")
		shapes  = flag.String("shapes", "uniform,sorted,reversed,dups,equal", "comma-separated shape pool the mix draws from")
		spacing = flag.Duration("spacing", 0, "arrival spacing between job launches")
		model   = flag.String("model", "auto", "forwarded to /sort?model=")
		jobMem  = flag.Int("jobmem", 0, "per-job budget hint in records, forwarded as /sort?mem= (0 = server default)")
		save    = flag.String("save", "", "directory to dump each job's input/output text (for solo-run diffing)")
		jsonOut = flag.String("json", "", "record the tables as JSON rows (exp.Recorder format)")
		wireFmt = flag.String("wire", "text", "job dialect: text | binary (record frames) | mixed (alternate by job id)")
		kernels = flag.String("kernels", "sort", "comma-separated kernel pool the mix draws from (see internal/kernel)")
		metrics = flag.Bool("metrics", false, "scrape /metrics before and after the run and verify the counter deltas and post-drain gauges")
		cluster = flag.Bool("cluster", false, "target is an asymsortd coordinator: sort-only mix, /stats checked for job completion and shard retries/hedges")
		mix     = flag.String("mix", "", "scenario generator: latency (small urgent jobs), throughput (bulk jobs), mixed (bulk background + small urgent foreground); adds priority/deadline headers and a per-class latency table")
		version = flag.Bool("version", false, "print build info and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(obs.ReadBuildInfo())
		return
	}
	if err := run(*addr, *jobs, *conc, *seed, *minN, *maxN, *shapes, *spacing, *model, *jobMem, *save, *jsonOut, *wireFmt, *kernels, *metrics, *cluster, *mix); err != nil {
		fmt.Fprintf(os.Stderr, "asymload: %v\n", err)
		os.Exit(1)
	}
}

func run(addr string, jobs, conc int, seed uint64, minN, maxN int, shapeList string,
	spacing time.Duration, model string, jobMem int, save, jsonOut, wireMode, kernelList string,
	metricsCheck, clusterMode bool, mix string) error {
	if jobs < 1 || minN < 1 || maxN < minN {
		return fmt.Errorf("need -jobs >= 1 and 1 <= -minn <= -maxn")
	}
	switch mix {
	case "", "latency", "throughput", "mixed":
	default:
		return fmt.Errorf("bad -mix %q (latency | throughput | mixed)", mix)
	}
	if mix != "" && kernelList != "" && kernelList != "sort" {
		return fmt.Errorf("-mix scenarios run the sort kernel only, got -kernels %s", kernelList)
	}
	if clusterMode {
		if kernelList != "" && kernelList != "sort" {
			return fmt.Errorf("-cluster runs the sort kernel only (coordinators scatter /sort alone), got -kernels %s", kernelList)
		}
		if metricsCheck {
			return fmt.Errorf("-metrics checks solo-daemon envelope gauges; not meaningful against a coordinator")
		}
	}
	switch wireMode {
	case "":
		wireMode = "text"
	case "text", "binary", "mixed":
	default:
		return fmt.Errorf("bad -wire %q (text | binary | mixed)", wireMode)
	}
	if conc <= 0 {
		conc = jobs
	}
	pool, err := shapePool(shapeList)
	if err != nil {
		return err
	}
	if kernelList == "" {
		kernelList = "sort"
	}
	kpool, err := kernelPool(kernelList)
	if err != nil {
		return err
	}
	if save != "" {
		if err := os.MkdirAll(save, 0o755); err != nil {
			return err
		}
	}

	// The deterministic mix: every job's (n, shape, seed) comes from the
	// mix seed alone, so -concurrency changes scheduling, never work.
	rng := xrand.New(seed)
	specs := make([]jobSpec, jobs)
	for i := range specs {
		nDraw := rng.Next()
		specs[i] = jobSpec{
			id:     i,
			n:      minN + int(nDraw%uint64(maxN-minN+1)),
			shape:  pool[rng.Next()%uint64(len(pool))],
			seed:   rng.Next(),
			binary: wireMode == "binary" || (wireMode == "mixed" && i%2 == 1),
			kernel: kpool[rng.Next()%uint64(len(kpool))],
		}
		if mix != "" {
			// Scenario classing: "small" jobs are urgent interactive work
			// (high priority, a deadline, sizes near -minn); "bulk" jobs
			// are background batch work (default class, sizes near -maxn).
			// In the mixed scenario every fourth job is bulk.
			small := mix == "latency" || (mix == "mixed" && i%4 != 3)
			sp := &specs[i]
			if small {
				sp.class = "small"
				sp.prio = 4
				sp.deadline = time.Second
				span := min(minN, maxN-minN) + 1
				sp.n = minN + int(nDraw%uint64(span))
			} else {
				sp.class = "bulk"
				lo := max(maxN/2, minN)
				sp.n = lo + int(nDraw%uint64(maxN-lo+1))
			}
		}
	}

	fmt.Printf("asymload: %d jobs (%d..%d records) against %s, concurrency %d, spacing %v, seed %d, wire %s, kernels %s\n",
		jobs, minN, maxN, addr, conc, spacing, seed, wireMode, strings.Join(kpool, ","))
	if mix != "" {
		fmt.Printf("  scenario: %s (small: priority 4, deadline 1s, ~%d records; bulk: default class, ~%d records)\n",
			mix, minN, maxN)
	}

	// -metrics baseline: snapshot the daemon's counters before any of our
	// jobs land, so the post-run diff isolates exactly this mix even
	// against a daemon that has already served other load.
	var before *obs.Snapshot
	if metricsCheck {
		var err error
		if before, err = scrapeMetrics(addr); err != nil {
			return fmt.Errorf("scraping /metrics before the run: %v", err)
		}
	}

	results := make([]jobResult, jobs)
	var wg sync.WaitGroup
	sem := make(chan struct{}, conc)
	start := time.Now()
	for i := range specs {
		if i > 0 && spacing > 0 {
			time.Sleep(spacing)
		}
		sem <- struct{}{} // launch-side cap: arrival order is preserved
		wg.Add(1)
		go func(sp jobSpec) {
			defer wg.Done()
			defer func() { <-sem }()
			if sp.kernel == "sort" {
				results[sp.id] = runJob(addr, model, jobMem, save, sp)
			} else {
				results[sp.id] = runKernelJob(addr, model, jobMem, save, sp)
			}
		}(specs[i])
	}
	wg.Wait()
	makespan := time.Since(start)

	// Render the per-job table and the summary.
	var rec *exp.Recorder
	if jsonOut != "" {
		rec = exp.NewRecorder()
	}
	failures := renderJobTable(os.Stdout, rec, results)
	totalRecs := renderSummary(os.Stdout, rec, results, makespan, conc)
	renderWireTable(os.Stdout, rec, results)
	if mix != "" {
		renderClassTable(os.Stdout, rec, results, mix)
	}

	if clusterMode {
		// Coordinator cross-check: every job this run drove must have
		// reached state "done" on the coordinator's own books too.
		bad, err := checkClusterStats(addr, jobs)
		if err != nil {
			return fmt.Errorf("fetching coordinator /stats: %v", err)
		}
		failures += bad
	} else {
		// Cross-check the daemon's ledgers: every ext job's measured block
		// writes must equal its simulated AEM plan.
		extJobs, mismatches, err := checkLedgers(addr)
		if err != nil {
			return fmt.Errorf("fetching /stats: %v", err)
		}
		if mismatches > 0 {
			failures += mismatches
			fmt.Printf("ledger identity: %d of %d ext jobs DIVERGE from the simulated AEM plan\n", mismatches, extJobs)
		} else {
			fmt.Printf("ledger identity: OK (%d ext jobs, measured block writes == simulated AEM plan)\n", extJobs)
		}
	}

	// -metrics invariants: the job counter must have moved by exactly the
	// number of jobs this run drove, and the envelope gauges must drain
	// back to zero once the last response has been consumed.
	if metricsCheck {
		if err := checkMetrics(addr, before, jobs); err != nil {
			failures++
			fmt.Printf("metrics invariants: FAIL: %v\n", err)
		} else {
			fmt.Printf("metrics invariants: OK (jobs_total +%d, queue/grant/lease gauges drained to zero)\n", jobs)
		}
	}

	if rec != nil {
		if err := rec.WriteFile(jsonOut); err != nil {
			return err
		}
		fmt.Printf("recorded %s\n", jsonOut)
	}
	// The greppable figures scripts (and the CI throughput gate) parse.
	fmt.Printf("total wall: %dms\n", makespan.Milliseconds())
	fmt.Printf("throughput: %.3f Mrec/s (%d records)\n",
		float64(totalRecs)/makespan.Seconds()/1e6, totalRecs)
	if failures > 0 {
		return fmt.Errorf("%d job(s) failed verification", failures)
	}
	if len(kpool) == 1 && kpool[0] == "sort" {
		fmt.Println("all jobs verified: sorted, complete, checksums match")
	} else {
		fmt.Println("all jobs verified: sort streams checksum-complete, kernel responses match their references")
	}
	return nil
}

// shapePool resolves the -shapes list to shape indexes.
func shapePool(list string) ([]int, error) {
	var pool []int
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		idx := -1
		for i, s := range shapeNames {
			if s == name {
				idx = i
			}
		}
		if idx < 0 {
			return nil, fmt.Errorf("unknown shape %q (have %s)", name, strings.Join(shapeNames, ", "))
		}
		pool = append(pool, idx)
	}
	if len(pool) == 0 {
		return nil, fmt.Errorf("-shapes is empty")
	}
	return pool, nil
}

// genKey returns job sp's i-th key. Shapes follow the repository's
// test corpus: uniform random, pre-sorted, reversed, duplicate-heavy
// (16 distinct keys), and all-equal. Server-side payloads (line
// indexes) keep the records unique, as the engines require.
func genKey(sp jobSpec, r *xrand.SplitMix64, i int) uint64 {
	switch shapeNames[sp.shape] {
	case "sorted":
		return uint64(i)
	case "reversed":
		return uint64(sp.n - i)
	case "dups":
		return r.Next() % 16
	case "equal":
		return 42
	default:
		return r.Next() >> 1
	}
}

// checksum is the order-independent multiset digest both sides of the
// wire are folded into (the same construction cmd/asymsort's ext
// verifier uses).
type checksum struct {
	n        int
	sum, xor uint64
}

func (c *checksum) add(key uint64) {
	h := xrand.Mix(key)
	c.n++
	c.sum += h
	c.xor ^= h
}

// runJob posts one job and verifies the response stream.
func runJob(addr, model string, jobMem int, save string, sp jobSpec) jobResult {
	res := jobResult{spec: sp}
	inSumCh := make(chan checksum, 1)

	// The request body streams straight out of the generator — no
	// job-sized buffer on the client either. The generator goroutine is
	// the sole owner of the input dump file: it flushes and closes it
	// before signaling inSumCh, so no main-goroutine path (error or
	// not) ever touches the writer concurrently, and the dump is
	// complete on every exit — http.Post closes the pipe reader on all
	// of its failure paths, which unblocks the generator.
	pr, pw := io.Pipe()
	var saveInF *os.File
	if save != "" {
		f, err := os.Create(filepath.Join(save, fmt.Sprintf("job-%d-in.txt", sp.id)))
		if err != nil {
			res.err = err
			return res
		}
		saveInF = f
	}
	go func() {
		var inSum checksum
		var saveIn *bufio.Writer
		if saveInF != nil {
			saveIn = bufio.NewWriterSize(saveInF, 1<<20)
		}
		defer func() {
			if saveInF != nil {
				saveIn.Flush()
				saveInF.Close()
			}
			inSumCh <- inSum
		}()
		bw := bufio.NewWriterSize(pw, 1<<20)
		r := xrand.New(sp.seed)
		var line []byte
		if sp.binary {
			// Frame dialect: the same keys, packed as records with the
			// index as payload — exactly the pairing the server's text
			// stager assigns, so the two dialects sort identical record
			// multisets. The -save dump stays text either way: dumps from
			// a text run and a binary run of the same seed diff clean.
			fw, err := wire.NewWriter(bw, int64(sp.n))
			if err != nil {
				pw.CloseWithError(err)
				return
			}
			batch := make([]seq.Record, 0, 1<<13)
			for i := 0; i < sp.n; i++ {
				key := genKey(sp, r, i)
				inSum.add(key)
				if saveIn != nil {
					line = strconv.AppendUint(line[:0], key, 10)
					line = append(line, '\n')
					saveIn.Write(line)
				}
				batch = append(batch, seq.Record{Key: key, Val: uint64(i)})
				if len(batch) == cap(batch) {
					if err := fw.WriteRecords(batch); err != nil {
						pw.CloseWithError(err)
						return
					}
					batch = batch[:0]
				}
			}
			if err := fw.WriteRecords(batch); err != nil {
				pw.CloseWithError(err)
				return
			}
			if err := fw.Close(); err != nil {
				pw.CloseWithError(err)
				return
			}
			pw.CloseWithError(bw.Flush())
			return
		}
		for i := 0; i < sp.n; i++ {
			key := genKey(sp, r, i)
			inSum.add(key)
			line = strconv.AppendUint(line[:0], key, 10)
			line = append(line, '\n')
			if saveIn != nil {
				saveIn.Write(line)
			}
			if _, err := bw.Write(line); err != nil {
				pw.CloseWithError(err)
				return
			}
		}
		pw.CloseWithError(bw.Flush())
	}()

	query := "/sort?model=" + model
	if jobMem > 0 {
		query += "&mem=" + strconv.Itoa(jobMem)
	}
	contentType := "text/plain"
	if sp.binary {
		contentType = wire.ContentType
	}
	req, err := http.NewRequest("POST", addr+query, pr)
	if err != nil {
		res.err = err
		return res
	}
	req.Header.Set("Content-Type", contentType)
	if sp.prio != 0 {
		req.Header.Set("X-Asymsortd-Priority", strconv.Itoa(sp.prio))
	}
	if sp.deadline > 0 {
		req.Header.Set("X-Asymsortd-Deadline", sp.deadline.String())
	}
	start := time.Now()
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		res.err = err
		return res
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		res.err = fmt.Errorf("status %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
		return res
	}
	res.model = resp.Header.Get("X-Asymsortd-Model")
	res.memRecs, _ = strconv.Atoi(resp.Header.Get("X-Asymsortd-Mem"))

	// Verify the stream: non-decreasing keys, exact count, and the
	// multiset checksum of what we sent.
	var outSum checksum
	var saveOut *bufio.Writer
	if save != "" {
		f, err := os.Create(filepath.Join(save, fmt.Sprintf("job-%d-out.txt", sp.id)))
		if err != nil {
			res.err = err
			return res
		}
		defer f.Close()
		saveOut = bufio.NewWriterSize(f, 1<<20)
		defer saveOut.Flush()
	}
	var prev uint64
	first := true
	var line []byte
	if sp.binary {
		if got := resp.Header.Get("X-Asymsortd-Wire"); got != "binary" {
			res.err = fmt.Errorf("asked for a binary response, server answered wire %q", got)
			return res
		}
		fr, err := wire.NewReader(bufio.NewReaderSize(resp.Body, 1<<20))
		if err != nil {
			res.err = err
			return res
		}
		res.ttfb = time.Since(start) // the header just arrived
		buf := make([]seq.Record, 1<<13)
		for {
			m, rerr := fr.ReadRecords(buf)
			for _, rec := range buf[:m] {
				if !first && rec.Key < prev {
					res.err = fmt.Errorf("response not sorted at record %d: %d after %d", outSum.n, rec.Key, prev)
					return res
				}
				prev, first = rec.Key, false
				outSum.add(rec.Key)
				if saveOut != nil {
					line = strconv.AppendUint(line[:0], rec.Key, 10)
					line = append(line, '\n')
					saveOut.Write(line)
				}
			}
			if rerr == io.EOF {
				break
			}
			if rerr != nil {
				res.err = rerr
				return res
			}
		}
	} else {
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			if first {
				res.ttfb = time.Since(start)
			}
			key, err := strconv.ParseUint(sc.Text(), 10, 64)
			if err != nil {
				res.err = fmt.Errorf("response line %d: %v", outSum.n+1, err)
				return res
			}
			if !first && key < prev {
				res.err = fmt.Errorf("response not sorted at record %d: %d after %d", outSum.n, key, prev)
				return res
			}
			prev, first = key, false
			outSum.add(key)
			if saveOut != nil {
				saveOut.Write(sc.Bytes())
				saveOut.WriteByte('\n')
			}
		}
		if err := sc.Err(); err != nil {
			res.err = err
			return res
		}
	}
	res.wall = time.Since(start)
	// The generator has necessarily finished (the server only responds
	// after consuming the whole body), so this receive cannot block.
	inSum := <-inSumCh
	if outSum != inSum {
		res.err = fmt.Errorf("response is not a permutation of the input: sent %d records, got %d (checksum mismatch)",
			inSum.n, outSum.n)
	}
	return res
}

// renderJobTable prints the per-job table and returns the failure
// count.
func renderJobTable(w io.Writer, rec *exp.Recorder, results []jobResult) int {
	header := []string{"job", "kernel", "shape", "n", "wire", "model", "memRecs", "wall ms", "ttfb ms", "Mrec/s", "status"}
	var rows [][]string
	failures := 0
	for _, r := range results {
		status := "ok"
		if r.err != nil {
			failures++
			status = "FAIL: " + r.err.Error()
		}
		rate := ""
		if r.wall > 0 {
			rate = fmt.Sprintf("%.3f", float64(r.spec.n)/r.wall.Seconds()/1e6)
		}
		rows = append(rows, []string{
			strconv.Itoa(r.spec.id), r.spec.kernel, shapeNames[r.spec.shape], strconv.Itoa(r.spec.n),
			r.spec.wireName(), r.model, strconv.Itoa(r.memRecs),
			strconv.FormatInt(r.wall.Milliseconds(), 10),
			strconv.FormatInt(r.ttfb.Milliseconds(), 10),
			rate, status,
		})
	}
	writeTable(w, header, rows)
	if rec != nil {
		rec.Record("load", "asymsortd job mix", header, rows)
	}
	return failures
}

// renderSummary prints the aggregate line items and returns the total
// record count.
func renderSummary(w io.Writer, rec *exp.Recorder, results []jobResult, makespan time.Duration, conc int) int {
	totalRecs := 0
	walls := make([]time.Duration, 0, len(results))
	for _, r := range results {
		if r.err == nil {
			totalRecs += r.spec.n
			walls = append(walls, r.wall)
		}
	}
	sort.Slice(walls, func(a, b int) bool { return walls[a] < walls[b] })
	med, max := time.Duration(0), time.Duration(0)
	if len(walls) > 0 {
		med, max = walls[len(walls)/2], walls[len(walls)-1]
	}
	header := []string{"concurrency", "jobs", "records", "makespan ms", "agg Mrec/s", "p50 ms", "max ms"}
	rows := [][]string{{
		strconv.Itoa(conc), strconv.Itoa(len(results)), strconv.Itoa(totalRecs),
		strconv.FormatInt(makespan.Milliseconds(), 10),
		fmt.Sprintf("%.3f", float64(totalRecs)/makespan.Seconds()/1e6),
		strconv.FormatInt(med.Milliseconds(), 10),
		strconv.FormatInt(max.Milliseconds(), 10),
	}}
	fmt.Fprintln(w)
	writeTable(w, header, rows)
	if rec != nil {
		rec.Record("load", "asymsortd job mix", header, rows)
	}
	return totalRecs
}

// renderWireTable prints per-wire-mode latency quantiles — the
// text-vs-binary comparison the frame dialect exists for. Under -json
// the rows land in the recording, so the BENCH artifact carries the
// per-dialect p50/p99 for benchdiff.
func renderWireTable(w io.Writer, rec *exp.Recorder, results []jobResult) {
	var order []string
	byMode := map[string][]jobResult{}
	for _, r := range results {
		if r.err != nil {
			continue
		}
		m := r.spec.wireName()
		if _, ok := byMode[m]; !ok {
			order = append(order, m)
		}
		byMode[m] = append(byMode[m], r)
	}
	header := []string{"wire", "jobs", "records", "p50 wall ms", "p99 wall ms", "p50 ttfb ms", "p99 ttfb ms"}
	var rows [][]string
	for _, m := range order {
		rs := byMode[m]
		walls := make([]time.Duration, len(rs))
		ttfbs := make([]time.Duration, len(rs))
		recs := 0
		for i, r := range rs {
			walls[i], ttfbs[i] = r.wall, r.ttfb
			recs += r.spec.n
		}
		sort.Slice(walls, func(a, b int) bool { return walls[a] < walls[b] })
		sort.Slice(ttfbs, func(a, b int) bool { return ttfbs[a] < ttfbs[b] })
		rows = append(rows, []string{
			m, strconv.Itoa(len(rs)), strconv.Itoa(recs),
			strconv.FormatInt(pct(walls, 50).Milliseconds(), 10),
			strconv.FormatInt(pct(walls, 99).Milliseconds(), 10),
			strconv.FormatInt(pct(ttfbs, 50).Milliseconds(), 10),
			strconv.FormatInt(pct(ttfbs, 99).Milliseconds(), 10),
		})
	}
	if len(rows) == 0 {
		return
	}
	fmt.Fprintln(w)
	writeTable(w, header, rows)
	if rec != nil {
		rec.Record("load-wire", "per-wire-mode latency", header, rows)
	}
}

// renderClassTable prints the -mix per-class latency quantiles and the
// greppable "<class> p50/p99" lines the CI mixed-load gate parses —
// the small-job p99 under contention is the figure the adaptive broker
// exists to improve.
func renderClassTable(w io.Writer, rec *exp.Recorder, results []jobResult, mix string) {
	byClass := map[string][]jobResult{}
	for _, r := range results {
		if r.err != nil || r.spec.class == "" {
			continue
		}
		byClass[r.spec.class] = append(byClass[r.spec.class], r)
	}
	header := []string{"class", "jobs", "records", "p50 wall ms", "p99 wall ms", "p50 ttfb ms", "p99 ttfb ms"}
	var rows [][]string
	var lines []string
	for _, cl := range []string{"small", "bulk"} {
		rs := byClass[cl]
		if len(rs) == 0 {
			continue
		}
		walls := make([]time.Duration, len(rs))
		ttfbs := make([]time.Duration, len(rs))
		recs := 0
		for i, r := range rs {
			walls[i], ttfbs[i] = r.wall, r.ttfb
			recs += r.spec.n
		}
		sort.Slice(walls, func(a, b int) bool { return walls[a] < walls[b] })
		sort.Slice(ttfbs, func(a, b int) bool { return ttfbs[a] < ttfbs[b] })
		rows = append(rows, []string{
			cl, strconv.Itoa(len(rs)), strconv.Itoa(recs),
			strconv.FormatInt(pct(walls, 50).Milliseconds(), 10),
			strconv.FormatInt(pct(walls, 99).Milliseconds(), 10),
			strconv.FormatInt(pct(ttfbs, 50).Milliseconds(), 10),
			strconv.FormatInt(pct(ttfbs, 99).Milliseconds(), 10),
		})
		lines = append(lines,
			fmt.Sprintf("%s p50: %dms", cl, pct(walls, 50).Milliseconds()),
			fmt.Sprintf("%s p99: %dms", cl, pct(walls, 99).Milliseconds()))
	}
	if len(rows) == 0 {
		return
	}
	fmt.Fprintln(w)
	writeTable(w, header, rows)
	for _, l := range lines {
		fmt.Fprintln(w, l)
	}
	if rec != nil {
		rec.Record("load-class", "per-class latency ("+mix+" scenario)", header, rows)
	}
}

// pct is the nearest-rank percentile of an ascending-sorted sample.
func pct(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := (p*len(sorted)+99)/100 - 1
	if idx < 0 {
		idx = 0
	}
	return sorted[idx]
}

func writeTable(w io.Writer, header []string, rows [][]string) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, strings.Join(header, "\t"))
	for _, r := range rows {
		fmt.Fprintln(tw, strings.Join(r, "\t"))
	}
	tw.Flush()
}

// statsPayload mirrors the /stats JSON shape (see internal/serve).
type statsPayload struct {
	Kernels map[string]struct {
		Done       int    `json:"done"`
		Writes     uint64 `json:"writes"`
		PlanWrites uint64 `json:"plan_writes"`
	} `json:"kernels"`
	Jobs []struct {
		ID         int    `json:"id"`
		Kernel     string `json:"kernel"`
		State      string `json:"state"`
		Model      string `json:"model"`
		Writes     uint64 `json:"writes"`
		PlanWrites uint64 `json:"plan_writes"`
		Priority   int    `json:"priority"`
		DeadlineMS int64  `json:"deadline_ms"`
	} `json:"jobs"`
}

// checkLedgers fetches /stats and compares every completed ext job's
// measured write ledger to its simulated plan — then re-checks the
// identity on the per-kernel aggregates, which survive job eviction.
func checkLedgers(addr string) (extJobs, mismatches int, err error) {
	resp, err := http.Get(addr + "/stats")
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	var snap statsPayload
	if err := decodeJSON(resp.Body, &snap); err != nil {
		return 0, 0, err
	}
	for _, j := range snap.Jobs {
		if j.Model != "ext" || j.State != "done" {
			continue
		}
		extJobs++
		if j.Writes != j.PlanWrites {
			mismatches++
			fmt.Printf("  job %d (%s): measured %d block writes, simulated plan %d\n",
				j.ID, j.Kernel, j.Writes, j.PlanWrites)
		}
	}
	for name, agg := range snap.Kernels {
		if agg.Writes != agg.PlanWrites {
			mismatches++
			fmt.Printf("  kernel %s aggregate: measured %d block writes, simulated plan %d\n",
				name, agg.Writes, agg.PlanWrites)
		}
	}
	return extJobs, mismatches, nil
}

func decodeJSON(r io.Reader, v any) error {
	return json.NewDecoder(r).Decode(v)
}

// clusterStats mirrors the coordinator's /stats JSON shape (see
// internal/cluster).
type clusterStats struct {
	Workers []struct {
		URL     string `json:"url"`
		Healthy bool   `json:"healthy"`
		Shards  int    `json:"shards"`
		Retries int    `json:"retries"`
	} `json:"workers"`
	Jobs []struct {
		ID      int    `json:"id"`
		State   string `json:"state"`
		N       int    `json:"n"`
		Shards  int    `json:"shards"`
		Retries int    `json:"retries"`
		Hedges  int    `json:"hedges"`
		Err     string `json:"err"`
	} `json:"jobs"`
}

// checkClusterStats fetches the coordinator's /stats and verifies the
// run on its books: at least the jobs this mix drove are recorded, and
// every recorded job reached "done" — a coordinator that silently
// absorbed a failed scatter would show up here even if the client-side
// stream checks somehow passed. Prints the shard/retry/hedge summary.
func checkClusterStats(addr string, jobs int) (failures int, err error) {
	resp, err := http.Get(addr + "/stats")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	var snap clusterStats
	if err := decodeJSON(resp.Body, &snap); err != nil {
		return 0, err
	}
	done, shards, retries, hedges := 0, 0, 0, 0
	for _, j := range snap.Jobs {
		switch j.State {
		case "done":
			done++
			shards += j.Shards
			retries += j.Retries
			hedges += j.Hedges
		default:
			failures++
			fmt.Printf("  coordinator job %d: state %q %s\n", j.ID, j.State, j.Err)
		}
	}
	if done < jobs {
		failures++
		fmt.Printf("coordinator books: only %d of %d jobs recorded done\n", done, jobs)
	}
	healthy := 0
	for _, w := range snap.Workers {
		if w.Healthy {
			healthy++
		}
	}
	status := "OK"
	if failures > 0 {
		status = "FAIL"
	}
	fmt.Printf("cluster books: %s (%d jobs done over %d/%d healthy workers, %d shards, %d retries, %d hedges)\n",
		status, done, healthy, len(snap.Workers), shards, retries, hedges)
	return failures, nil
}

// scrapeMetrics fetches and parses the daemon's Prometheus exposition.
// Parsing through internal/obs's strict reader means every -metrics run
// also re-validates the exposition syntax end to end.
func scrapeMetrics(addr string) (*obs.Snapshot, error) {
	resp, err := http.Get(addr + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("/metrics returned status %d", resp.StatusCode)
	}
	return obs.ParseProm(resp.Body)
}

// checkMetrics enforces the load generator's two observability
// invariants against a before/after scrape pair:
//
//  1. asymsortd_jobs_total moved by exactly the number of jobs this run
//     drove — no job may finish uncounted, none counted twice;
//  2. after the drain, the envelope gauges (admission queue depth, live
//     leases, live granted bytes) are back to zero.
//
// The gauges are polled briefly: a job's lease is released when its
// handler returns, a hair after the client sees the response body end.
func checkMetrics(addr string, before *obs.Snapshot, jobs int) error {
	deadline := time.Now().Add(5 * time.Second)
	gauges := []string{"asymsortd_queue_depth", "asymsortd_leases", "asymsortd_grant_bytes"}
	for {
		after, err := scrapeMetrics(addr)
		if err != nil {
			return fmt.Errorf("scraping /metrics after the run: %v", err)
		}
		stuck := ""
		if delta := after.Sum("asymsortd_jobs_total") - before.Sum("asymsortd_jobs_total"); delta != float64(jobs) {
			stuck = fmt.Sprintf("asymsortd_jobs_total moved by %g, ran %d jobs", delta, jobs)
		}
		for _, g := range gauges {
			if stuck != "" {
				break
			}
			if v := after.Sum(g); v != 0 {
				stuck = fmt.Sprintf("%s = %g after drain (want 0)", g, v)
			}
		}
		if stuck == "" {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("%s", stuck)
		}
		time.Sleep(50 * time.Millisecond)
	}
}
