package main

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"asymsort/internal/cluster"
	"asymsort/internal/serve"
)

// newTestService stands up an in-process asymsortd: real broker, real
// handler, loopback HTTP.
func newTestService(t *testing.T) *httptest.Server {
	t.Helper()
	broker, err := serve.NewBroker(serve.BrokerConfig{Mem: 1 << 16, Procs: 2, MinLease: 1024})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := serve.NewServer(serve.ServerConfig{Broker: broker, Block: 64, Omega: 8, TmpDir: t.TempDir()})
	if err != nil {
		broker.Close()
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		broker.Close()
	})
	return ts
}

// TestWireDifferential runs the identical seeded job mix against fresh
// services in every wire mode — text, binary, and mixed — serialized so
// server job ids line up with the mix. run itself verifies each
// response (order, count, multiset checksum) and the write-ledger
// identity; on top of that the -save dumps must be byte-identical
// across modes (the dialect may not change what gets sorted) and the
// per-job /stats ledgers of the text and binary runs must match
// exactly: same measured block writes, same simulated plan.
func TestWireDifferential(t *testing.T) {
	const seed, jobs = 7, 6
	saves := map[string]string{}
	ledgers := map[string]statsPayload{}
	for _, mode := range []string{"text", "binary", "mixed"} {
		ts := newTestService(t)
		save := filepath.Join(t.TempDir(), mode)
		if err := run(ts.URL, jobs, 1, seed, 2000, 12000, "uniform,dups,sorted,reversed", 0,
			"ext", 0, save, "", mode, "sort", true, false, ""); err != nil {
			t.Fatalf("%s run: %v", mode, err)
		}
		saves[mode] = save
		resp, err := http.Get(ts.URL + "/stats")
		if err != nil {
			t.Fatal(err)
		}
		var snap statsPayload
		err = decodeJSON(resp.Body, &snap)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		ledgers[mode] = snap
	}

	for _, mode := range []string{"binary", "mixed"} {
		for i := 0; i < jobs; i++ {
			for _, kind := range []string{"in", "out"} {
				name := fmt.Sprintf("job-%d-%s.txt", i, kind)
				want, err := os.ReadFile(filepath.Join(saves["text"], name))
				if err != nil {
					t.Fatal(err)
				}
				got, err := os.ReadFile(filepath.Join(saves[mode], name))
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("%s dump %s differs from the text run's", mode, name)
				}
			}
		}
	}

	txt, bin := ledgers["text"], ledgers["binary"]
	if len(txt.Jobs) != jobs || len(bin.Jobs) != jobs {
		t.Fatalf("stats cover %d and %d jobs, want %d", len(txt.Jobs), len(bin.Jobs), jobs)
	}
	byID := func(snap statsPayload, id int) (writes, plan uint64) {
		for _, j := range snap.Jobs {
			if j.ID == id {
				return j.Writes, j.PlanWrites
			}
		}
		t.Fatalf("job %d missing from /stats", id)
		return 0, 0
	}
	for i := 0; i < jobs; i++ {
		tw, tp := byID(txt, i)
		bw, bp := byID(bin, i)
		if tw == 0 || tp == 0 {
			t.Fatalf("job %d: text ledger is empty (writes=%d plan=%d)", i, tw, tp)
		}
		if tw != bw || tp != bp {
			t.Fatalf("job %d: text ledger writes=%d plan=%d, binary writes=%d plan=%d",
				i, tw, tp, bw, bp)
		}
		if tw != tp {
			t.Fatalf("job %d: measured writes %d != plan writes %d", i, tw, tp)
		}
	}
}

// TestWireModeAssignment pins the mixed-mode alternation rule: even job
// ids speak text, odd ids speak the frame dialect.
func TestWireModeAssignment(t *testing.T) {
	for _, tc := range []struct {
		mode string
		id   int
		want bool
	}{
		{"text", 0, false}, {"text", 1, false},
		{"binary", 0, true}, {"binary", 1, true},
		{"mixed", 0, false}, {"mixed", 1, true}, {"mixed", 2, false}, {"mixed", 3, true},
	} {
		got := tc.mode == "binary" || (tc.mode == "mixed" && tc.id%2 == 1)
		if got != tc.want {
			t.Fatalf("mode %s job %d: binary=%v, want %v", tc.mode, tc.id, got, tc.want)
		}
	}
	if err := run("http://127.0.0.1:1", 1, 1, 1, 1, 1, "uniform", 0, "auto", 0, "", "", "bogus", "sort", false, false, ""); err == nil {
		t.Fatal("bad -wire value was accepted")
	}
	if err := run("http://127.0.0.1:1", 1, 1, 1, 1, 1, "uniform", 0, "auto", 0, "", "", "text", "sort,bogus", false, false, ""); err == nil {
		t.Fatal("bad -kernels value was accepted")
	}
}

// TestClusterLoad points the seeded mix at a real coordinator over
// three loopback workers in -cluster mode, then replays the identical
// mix against a solo service. run verifies each response on the wire
// and checks the coordinator's books; the -save dumps of the two runs
// must be byte-identical — the cluster scatter/gather may not change a
// single output byte.
func TestClusterLoad(t *testing.T) {
	const seed, jobs = 13, 6
	var workers []string
	for i := 0; i < 3; i++ {
		workers = append(workers, newTestService(t).URL)
	}
	coord, err := cluster.New(cluster.Config{
		Workers: workers, Shards: 6, TmpDir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	cts := httptest.NewServer(coord.Handler())
	defer cts.Close()

	clusterSave := filepath.Join(t.TempDir(), "cluster")
	if err := run(cts.URL, jobs, 2, seed, 2000, 12000, "uniform,dups,sorted,reversed,equal", 0,
		"ext", 0, clusterSave, "", "mixed", "sort", false, true, ""); err != nil {
		t.Fatalf("cluster run: %v", err)
	}

	soloSave := filepath.Join(t.TempDir(), "solo")
	solo := newTestService(t)
	if err := run(solo.URL, jobs, 2, seed, 2000, 12000, "uniform,dups,sorted,reversed,equal", 0,
		"ext", 0, soloSave, "", "mixed", "sort", false, false, ""); err != nil {
		t.Fatalf("solo run: %v", err)
	}

	for i := 0; i < jobs; i++ {
		for _, kind := range []string{"in", "out"} {
			name := fmt.Sprintf("job-%d-%s.txt", i, kind)
			want, err := os.ReadFile(filepath.Join(soloSave, name))
			if err != nil {
				t.Fatal(err)
			}
			got, err := os.ReadFile(filepath.Join(clusterSave, name))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("cluster dump %s differs from the solo run's", name)
			}
		}
	}

	if err := run(cts.URL, 1, 1, 1, 1000, 1000, "uniform", 0, "auto", 0, "", "", "text",
		"sort,semisort", false, true, ""); err == nil {
		t.Fatal("-cluster accepted a non-sort kernel pool")
	}
	if err := run(cts.URL, 1, 1, 1, 1000, 1000, "uniform", 0, "auto", 0, "", "", "text",
		"sort", true, true, ""); err == nil {
		t.Fatal("-cluster accepted -metrics")
	}
}

// TestMixedLoadClasses drives a -mix mixed scenario and checks the
// server side saw the admission classes the generator promises: small
// jobs carry priority 4 and a 1s deadline, bulk jobs ride the default
// class, and both classes actually appear in the mix.
func TestMixedLoadClasses(t *testing.T) {
	const seed, jobs = 17, 8
	ts := newTestService(t)
	if err := run(ts.URL, jobs, 2, seed, 2000, 12000, "uniform", 0,
		"ext", 0, "", "", "text", "sort", false, false, "mixed"); err != nil {
		t.Fatalf("mixed run: %v", err)
	}
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var snap statsPayload
	err = decodeJSON(resp.Body, &snap)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Jobs) != jobs {
		t.Fatalf("stats cover %d jobs, want %d", len(snap.Jobs), jobs)
	}
	var small, bulk int
	for _, j := range snap.Jobs {
		switch {
		case j.Priority == 4 && j.DeadlineMS == 1000:
			small++
		case j.Priority == 0 && j.DeadlineMS == 0:
			bulk++
		default:
			t.Fatalf("job %d carries an unexpected class: priority=%d deadline_ms=%d",
				j.ID, j.Priority, j.DeadlineMS)
		}
		if j.State != "done" {
			t.Fatalf("job %d ended %q", j.ID, j.State)
		}
	}
	if small == 0 || bulk == 0 {
		t.Fatalf("mixed scenario produced %d small and %d bulk jobs; want both classes", small, bulk)
	}

	if err := run("http://127.0.0.1:1", 1, 1, 1, 1, 1, "uniform", 0, "auto", 0, "", "", "text", "sort", false, false, "bogus"); err == nil {
		t.Fatal("bad -mix value was accepted")
	}
	if err := run("http://127.0.0.1:1", 1, 1, 1, 1, 1, "uniform", 0, "auto", 0, "", "", "text", "sort,semisort", false, false, "latency"); err == nil {
		t.Fatal("-mix accepted a non-sort kernel pool")
	}
}

// TestKernelMixDifferential drives a mixed-kernel workload — every
// registry kernel in the pool — over both wire dialects against a
// fresh service each time. run itself performs the per-kernel
// differential verification (each non-sort response is compared record
// for record against the kernel's in-memory reference recomputed
// client-side) and cross-checks the /stats ledger identity, so the
// assertion here is that the whole mix passes, that every kernel in
// the pool actually ran, and that the per-kernel aggregates carry the
// write identity.
func TestKernelMixDifferential(t *testing.T) {
	const seed, jobs = 11, 10
	pool := "sort,semisort,histogram,top-k,merge-join"
	for _, mode := range []string{"text", "binary"} {
		ts := newTestService(t)
		if err := run(ts.URL, jobs, 2, seed, 2000, 12000, "uniform,dups,sorted,reversed", 0,
			"ext", 0, "", "", mode, pool, true, false, ""); err != nil {
			t.Fatalf("%s kernel mix: %v", mode, err)
		}
		resp, err := http.Get(ts.URL + "/stats")
		if err != nil {
			t.Fatal(err)
		}
		var snap statsPayload
		err = decodeJSON(resp.Body, &snap)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if len(snap.Jobs) != jobs {
			t.Fatalf("%s: stats cover %d jobs, want %d", mode, len(snap.Jobs), jobs)
		}
		ranKernels := map[string]bool{}
		for _, j := range snap.Jobs {
			if j.State != "done" {
				t.Fatalf("%s: job %d (%s) ended %q", mode, j.ID, j.Kernel, j.State)
			}
			ranKernels[j.Kernel] = true
			if j.Writes == 0 || j.Writes != j.PlanWrites {
				t.Fatalf("%s: job %d (%s): writes=%d plan=%d", mode, j.ID, j.Kernel, j.Writes, j.PlanWrites)
			}
		}
		if len(ranKernels) < 3 {
			t.Fatalf("%s: the seeded mix exercised only %d distinct kernels: %v", mode, len(ranKernels), ranKernels)
		}
		for name, agg := range snap.Kernels {
			if agg.Done == 0 || agg.Writes != agg.PlanWrites {
				t.Fatalf("%s: kernel %s aggregate done=%d writes=%d plan=%d",
					mode, name, agg.Done, agg.Writes, agg.PlanWrites)
			}
		}
	}
}
