package main

// The kernel-mix path: jobs whose kernel isn't "sort" post to the
// generic /v1/{kernel} endpoint and are verified differentially — the
// client regenerates the job's records, computes the expected output
// with the kernel's in-memory reference, and compares the response
// record for record. Unlike the sort path (which can verify a stream
// with order checks and a multiset checksum), kernel outputs are
// arbitrary reductions, so the reference is the only ground truth; the
// jobs are small enough that buffering them is free.

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"asymsort/internal/kernel"
	"asymsort/internal/seq"
	"asymsort/internal/wire"
	"asymsort/internal/xrand"
)

// kernelPool resolves the -kernels list against the registry.
func kernelPool(list string) ([]string, error) {
	var pool []string
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		if _, ok := kernel.Get(name); !ok {
			return nil, fmt.Errorf("unknown kernel %q (have %s)", name, strings.Join(kernel.Names(), ", "))
		}
		pool = append(pool, name)
	}
	if len(pool) == 0 {
		return nil, fmt.Errorf("-kernels is empty")
	}
	return pool, nil
}

// paramsFor derives a job's kernel parameters from its size alone, so
// both sides of the differential (the request query and the local
// reference) agree without any extra wire state.
func paramsFor(sp jobSpec) kernel.Params {
	switch sp.kernel {
	case "histogram":
		return kernel.Params{Buckets: 256}
	case "top-k":
		k := sp.n / 16
		if k < 1 {
			k = 1
		}
		return kernel.Params{K: k}
	case "merge-join":
		return kernel.Params{LeftN: sp.n / 2}
	default:
		return kernel.Params{}
	}
}

// kernelQuery renders the parameters a kernel job forwards.
func kernelQuery(sp jobSpec, p kernel.Params) string {
	var q string
	switch sp.kernel {
	case "histogram":
		q = "&buckets=" + strconv.Itoa(p.Buckets)
	case "top-k":
		q = "&k=" + strconv.Itoa(p.K)
	case "merge-join":
		q = "&left=" + strconv.Itoa(p.LeftN)
	}
	return q
}

// runKernelJob posts one non-sort job to /v1/{kernel} and verifies the
// response record for record against the kernel's in-memory reference.
// The input records pair each generated key with its index — exactly
// the payload the server's text stager assigns — so the text and frame
// dialects compute over identical record multisets, and the -save
// input dumps stay diffable against sort runs of the same seed.
func runKernelJob(addr, model string, jobMem int, save string, sp jobSpec) jobResult {
	res := jobResult{spec: sp}
	k, ok := kernel.Get(sp.kernel)
	if !ok {
		res.err = fmt.Errorf("kernel %q vanished from the registry", sp.kernel)
		return res
	}
	p := paramsFor(sp)

	r := xrand.New(sp.seed)
	recs := make([]seq.Record, sp.n)
	if sp.kernel == "merge-join" {
		// A join's output is quadratic in per-key duplication, so
		// merge-join jobs draw from a fixed ~8-copies-per-key
		// distribution instead of the mix's shape — the "equal" and
		// "dups" shapes would blow the output up to Θ(n²) records.
		span := uint64(sp.n/8 + 1)
		for i := range recs {
			recs[i] = seq.Record{Key: r.Next() % span, Val: uint64(i)}
		}
	} else {
		for i := range recs {
			recs[i] = seq.Record{Key: genKey(sp, r, i), Val: uint64(i)}
		}
	}
	if err := k.Check(len(recs), p); err != nil {
		res.err = err
		return res
	}
	want := k.Ref(recs, p)

	if save != "" {
		if err := dumpKeys(filepath.Join(save, fmt.Sprintf("job-%d-in.txt", sp.id)), recs); err != nil {
			res.err = err
			return res
		}
	}

	var body bytes.Buffer
	contentType := "text/plain"
	if sp.binary {
		contentType = wire.ContentType
		fw, err := wire.NewWriter(&body, int64(len(recs)))
		if err == nil {
			err = fw.WriteRecords(recs)
		}
		if err == nil {
			err = fw.Close()
		}
		if err != nil {
			res.err = err
			return res
		}
	} else {
		var line []byte
		for _, rec := range recs {
			line = strconv.AppendUint(line[:0], rec.Key, 10)
			line = append(line, '\n')
			body.Write(line)
		}
	}

	query := "/v1/" + sp.kernel + "?model=" + model + kernelQuery(sp, p)
	if jobMem > 0 {
		query += "&mem=" + strconv.Itoa(jobMem)
	}
	start := time.Now()
	resp, err := http.Post(addr+query, contentType, &body)
	if err != nil {
		res.err = err
		return res
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		res.err = fmt.Errorf("status %d: %s", resp.StatusCode, strings.TrimSpace(string(b)))
		return res
	}
	if got := resp.Header.Get("X-Asymsortd-Kernel"); got != sp.kernel {
		res.err = fmt.Errorf("asked for kernel %q, server ran %q", sp.kernel, got)
		return res
	}
	res.model = resp.Header.Get("X-Asymsortd-Model")
	res.memRecs, _ = strconv.Atoi(resp.Header.Get("X-Asymsortd-Mem"))

	got, ttfb, err := readKernelResponse(resp, sp.binary, start)
	if err != nil {
		res.err = err
		return res
	}
	res.ttfb = ttfb
	res.wall = time.Since(start)

	if outN, err := strconv.Atoi(resp.Header.Get("X-Asymsortd-Out")); err == nil && outN != len(got) {
		res.err = fmt.Errorf("X-Asymsortd-Out says %d records, body carried %d", outN, len(got))
		return res
	}
	if len(got) != len(want) {
		res.err = fmt.Errorf("kernel %s returned %d records, reference computes %d", sp.kernel, len(got), len(want))
		return res
	}
	for i := range got {
		if got[i] != want[i] {
			res.err = fmt.Errorf("kernel %s diverges from the reference at record %d: got {%d %d}, want {%d %d}",
				sp.kernel, i, got[i].Key, got[i].Val, want[i].Key, want[i].Val)
			return res
		}
	}
	if save != "" {
		if err := dumpRecords(filepath.Join(save, fmt.Sprintf("job-%d-out.txt", sp.id)), got); err != nil {
			res.err = err
			return res
		}
	}
	return res
}

// readKernelResponse decodes a /v1/{kernel} response body — "key value"
// lines or wire record frames — returning the records and the
// time-to-first-record.
func readKernelResponse(resp *http.Response, binary bool, start time.Time) ([]seq.Record, time.Duration, error) {
	var out []seq.Record
	var ttfb time.Duration
	if binary {
		if got := resp.Header.Get("X-Asymsortd-Wire"); got != "binary" {
			return nil, 0, fmt.Errorf("asked for a binary response, server answered wire %q", got)
		}
		fr, err := wire.NewReader(bufio.NewReaderSize(resp.Body, 1<<20))
		if err != nil {
			return nil, 0, err
		}
		ttfb = time.Since(start)
		buf := make([]seq.Record, 1<<13)
		for {
			m, rerr := fr.ReadRecords(buf)
			out = append(out, buf[:m]...)
			if rerr == io.EOF {
				return out, ttfb, nil
			}
			if rerr != nil {
				return nil, 0, rerr
			}
		}
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	first := true
	for sc.Scan() {
		if first {
			ttfb = time.Since(start)
			first = false
		}
		ks, vs, ok := strings.Cut(sc.Text(), " ")
		if !ok {
			return nil, 0, fmt.Errorf("response line %d: want \"key value\", got %q", len(out)+1, sc.Text())
		}
		key, err := strconv.ParseUint(ks, 10, 64)
		if err != nil {
			return nil, 0, fmt.Errorf("response line %d: %v", len(out)+1, err)
		}
		val, err := strconv.ParseUint(vs, 10, 64)
		if err != nil {
			return nil, 0, fmt.Errorf("response line %d: %v", len(out)+1, err)
		}
		out = append(out, seq.Record{Key: key, Val: val})
	}
	return out, ttfb, sc.Err()
}

// dumpKeys writes the input keys one per line — the same text shape
// the sort path dumps, so mixed-kernel runs stay diffable.
func dumpKeys(path string, recs []seq.Record) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	bw := bufio.NewWriterSize(f, 1<<20)
	var line []byte
	for _, rec := range recs {
		line = strconv.AppendUint(line[:0], rec.Key, 10)
		line = append(line, '\n')
		bw.Write(line)
	}
	return bw.Flush()
}

// dumpRecords writes "key value" lines for a kernel's output dump.
func dumpRecords(path string, recs []seq.Record) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	bw := bufio.NewWriterSize(f, 1<<20)
	var line []byte
	for _, rec := range recs {
		line = strconv.AppendUint(line[:0], rec.Key, 10)
		line = append(line, ' ')
		line = strconv.AppendUint(line, rec.Val, 10)
		line = append(line, '\n')
		bw.Write(line)
	}
	return bw.Flush()
}
