// Command asymsortd is the long-running kernel service: it admits many
// concurrent kernel jobs (sort, semisort, histogram, top-k,
// merge-join) over HTTP and makes them share one machine-wide resource
// envelope — the paper's (M, B, ω) — through the budget broker of
// internal/serve, instead of each job assuming it owns the box.
//
// Usage:
//
//	asymsortd -addr :8077 -mem 8MB -b 64 -omega 16
//	asymsortd -addr 127.0.0.1:0 -mem 64MB -procs 4 -tmpdir /mnt/scratch
//	asymsortd -addr :8077 -trace-dir /tmp/traces -debug-addr 127.0.0.1:6060
//
// Coordinator mode turns the same binary into a cluster front-end: it
// range-partitions each /sort job across a fleet of plain asymsortd
// workers and streams back output byte-identical to a solo run (see
// internal/cluster and docs/OPERATIONS.md):
//
//	asymsortd -coordinator -workers http://h1:8077,http://h2:8077,http://h3:8077
//	asymsortd -coordinator -workers ... -shards 12 -retries 3 -hedge 2s
//
// API (see internal/serve for the full contract):
//
//	POST /v1/{kernel}?model=auto|ext|native&mem=<records>
//	     kernel params: buckets= (histogram), k= (top-k),
//	     left= (merge-join); body: one decimal uint64 key per line →
//	     result "key value" lines, streamed (binary record frames on
//	     both legs via Content-Type/Accept)
//	POST /sort     the sort kernel under its historical route,
//	               byte-identical responses
//	GET  /stats    broker + per-job + per-kernel JSON (grants, queue,
//	               IO ledgers, simulated-plan write counts, wall times,
//	               live jobs' current phase)
//	GET  /healthz  liveness JSON: status ok|draining, uptime, leases,
//	               build info (module version, vcs revision)
//	GET  /metrics  Prometheus text exposition: jobs, queue, grants,
//	               pool/ioq occupancy, block IO by level, HTTP traffic
//
// -mem is the global budget shared by every job (a byte size; divided
// by the 16-byte record footprint). Under backpressure the default
// adaptive broker admits queued jobs by priority and deadline
// (X-Asymsortd-Priority / X-Asymsortd-Deadline headers, or priority= /
// deadline= query params) with size-proportional fair shares and
// anti-starvation aging; -admission fifo restores the legacy pure
// arrival order. Leases shrink/grow at merge-level boundaries as load
// changes — the adaptive policy picks shrink victims by observed merge
// progress — and a disconnected client cancels its job: the engine
// aborts and its spill files are removed. -omega is a prior: the
// daemon measures the device's real write/read cost ratio from every
// job's timed block IO (EWMA, persisted in -tmpdir), blends it with
// the flag, and picks each ext job's fan-in k from the blend (-omega 0
// trusts the measurement alone; see the asymsortd_tuning_* metrics and
// the /stats "tuning" section). cmd/asymload is the matching
// deterministic load generator.
//
// Observability: -trace-dir exports every job's span tree as JSONL and
// Chrome trace-event JSON (open the latter at https://ui.perfetto.dev);
// -debug-addr serves net/http/pprof on a second listener, kept off the
// service port so profiling is opt-in and never exposed with the API.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on DefaultServeMux for -debug-addr
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"asymsort/internal/cluster"
	"asymsort/internal/extmem"
	"asymsort/internal/kernel"
	"asymsort/internal/obs"
	"asymsort/internal/serve"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:8077", "listen address (host:port; :0 picks a free port)")
		mem       = flag.String("mem", "64MB", "global memory budget shared by all jobs, e.g. 8MB")
		block     = flag.Int("b", 64, "device block size in records (the model's B)")
		omega     = flag.Float64("omega", 8, "prior write/read cost ratio ω, blended with the live measurement (0 = fully measured; picks k when -k 0)")
		k         = flag.Int("k", 0, "ext read multiplier (0 = choose from ω, Appendix A)")
		procs     = flag.Int("procs", 0, "machine worker count shared by all jobs (0 = GOMAXPROCS)")
		tmpdir    = flag.String("tmpdir", "", "job staging/spill directory (default os.TempDir)")
		admission = flag.String("admission", "adaptive", "broker scheduling policy: adaptive (priority/deadline-aware, size-proportional shares) or fifo (legacy arrival order)")
		traceDir  = flag.String("trace-dir", "", "export each job's trace there as JSONL + Chrome trace-event JSON (empty = tracing off)")
		debugAddr = flag.String("debug-addr", "", "serve net/http/pprof on this extra listener (empty = pprof off)")
		version   = flag.Bool("version", false, "print build info and exit")

		coordinator = flag.Bool("coordinator", false, "run as a cluster coordinator instead of a job engine")
		workers     = flag.String("workers", "", "comma-separated worker base URLs (coordinator mode; required)")
		shards      = flag.Int("shards", 0, "range shards per job (coordinator mode; 0 = one per worker)")
		retries     = flag.Int("retries", 2, "re-dispatch budget per failed shard (coordinator mode)")
		hedge       = flag.Duration("hedge", 0, "re-dispatch a shard in flight longer than this to an idle worker (coordinator mode; 0 = off)")
	)
	flag.Parse()
	if *version {
		fmt.Println(obs.ReadBuildInfo())
		return
	}
	var err error
	if *coordinator {
		err = runCoordinator(*addr, *workers, *shards, *retries, *hedge, *tmpdir, *traceDir, *debugAddr)
	} else {
		err = run(*addr, *mem, *block, *omega, *k, *procs, *tmpdir, *traceDir, *debugAddr, *admission)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "asymsortd: %v\n", err)
		os.Exit(1)
	}
}

// runCoordinator serves the cluster front-end: same listener and
// shutdown scaffolding, but the handler scatters /sort jobs across the
// worker fleet instead of running them here.
func runCoordinator(addr, workersFlag string, shards, retries int, hedge time.Duration, tmpdir, traceDir, debugAddr string) error {
	var urls []string
	for _, u := range strings.Split(workersFlag, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, strings.TrimRight(u, "/"))
		}
	}
	if len(urls) == 0 {
		return fmt.Errorf("coordinator mode needs -workers url1,url2,...")
	}
	if traceDir != "" {
		if err := os.MkdirAll(traceDir, 0o777); err != nil {
			return fmt.Errorf("bad -trace-dir: %v", err)
		}
	}
	coord, err := cluster.New(cluster.Config{
		Workers: urls, Shards: shards, Retries: retries, HedgeAfter: hedge,
		TmpDir: tmpdir, TraceDir: traceDir, Metrics: obs.NewRegistry(),
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Printf("asymsortd: coordinating on %s\n", ln.Addr())
	fmt.Printf("  workers  : %s\n", strings.Join(urls, " · "))
	fmt.Printf("  dispatch : shards=%d retries=%d hedge=%v\n", max(shards, len(urls)), retries, hedge)
	fmt.Printf("  endpoints: POST /sort · GET /stats · GET /healthz · GET /metrics\n")
	if traceDir != "" {
		fmt.Printf("  tracing  : per-job JSONL + Chrome traces in %s\n", traceDir)
	}
	if debugAddr != "" {
		dln, err := net.Listen("tcp", debugAddr)
		if err != nil {
			ln.Close()
			return fmt.Errorf("bad -debug-addr: %v", err)
		}
		fmt.Printf("  pprof    : http://%s/debug/pprof/\n", dln.Addr())
		go http.Serve(dln, nil)
		defer dln.Close()
	}
	httpSrv := &http.Server{Handler: coord.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case s := <-sig:
		fmt.Printf("asymsortd: %v — draining cluster jobs and shutting down\n", s)
		sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(sctx); err != nil {
			return fmt.Errorf("shutdown with jobs still in flight: %w", err)
		}
		return nil
	}
}

func run(addr, memFlag string, block int, omega float64, k, procs int, tmpdir, traceDir, debugAddr, admission string) error {
	memBytes, err := serve.ParseSize(memFlag)
	if err != nil {
		return fmt.Errorf("bad -mem: %v", err)
	}
	memRecs := int(memBytes / extmem.RecordBytes)
	var fifo bool
	switch admission {
	case "adaptive", "":
	case "fifo":
		fifo = true
	default:
		return fmt.Errorf("bad -admission %q (want adaptive or fifo)", admission)
	}

	if traceDir != "" {
		if err := os.MkdirAll(traceDir, 0o777); err != nil {
			return fmt.Errorf("bad -trace-dir: %v", err)
		}
	}

	// One registry for the whole process: the broker's envelope gauges
	// and the job engine's job/IO/HTTP metrics share the /metrics scrape.
	reg := obs.NewRegistry()
	broker, err := serve.NewBroker(serve.BrokerConfig{
		Mem: memRecs, Procs: procs, MinLease: 16 * block, Metrics: reg, FIFO: fifo,
	})
	if err != nil {
		return err
	}
	srv, err := serve.NewServer(serve.ServerConfig{
		Broker: broker, Block: block, Omega: omega, K: k, TmpDir: tmpdir,
		Metrics: reg, TraceDir: traceDir,
	})
	if err != nil {
		broker.Close()
		return err
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		broker.Close()
		return err
	}
	stats := broker.Stats()
	fmt.Printf("asymsortd: listening on %s\n", ln.Addr())
	fmt.Printf("  envelope : M=%d records (%s), B=%d records, ω prior=%g (live-measured), procs=%d, min lease %d records\n",
		stats.TotalMem, memFlag, block, omega, stats.Procs, stats.MinLease)
	fmt.Printf("  admission: %s\n", admission)
	fmt.Printf("  kernels  : %s\n", strings.Join(kernel.Names(), " · "))
	fmt.Printf("  endpoints: POST /v1/{kernel} · POST /sort · GET /stats · GET /healthz · GET /metrics\n")
	if traceDir != "" {
		fmt.Printf("  tracing  : per-job JSONL + Chrome traces in %s\n", traceDir)
	}

	// pprof rides on its own listener (DefaultServeMux carries the
	// net/http/pprof registrations), so the profiling surface is only
	// reachable where -debug-addr points — typically loopback.
	if debugAddr != "" {
		dln, err := net.Listen("tcp", debugAddr)
		if err != nil {
			ln.Close()
			broker.Close()
			return fmt.Errorf("bad -debug-addr: %v", err)
		}
		fmt.Printf("  pprof    : http://%s/debug/pprof/\n", dln.Addr())
		go http.Serve(dln, nil)
		defer dln.Close()
	}

	httpSrv := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case s := <-sig:
		// Graceful drain: Shutdown waits for in-flight jobs, and only a
		// clean drain may close the broker — its shared IO queue must
		// never be closed under a still-running engine. On timeout the
		// process exits with the queue open; the OS reclaims it.
		fmt.Printf("asymsortd: %v — draining jobs and shutting down\n", s)
		srv.SetDraining() // /healthz reports draining while jobs finish
		sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(sctx); err != nil {
			return fmt.Errorf("shutdown with jobs still in flight: %w", err)
		}
		srv.Close() // persist the ω estimator so the next start begins warm
		broker.Close()
		return nil
	}
}
