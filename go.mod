module asymsort

go 1.24
